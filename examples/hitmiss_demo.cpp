/**
 * @file
 * Hit-miss prediction walkthrough.
 *
 * For one trace, evaluates every hit-miss predictor configuration
 * first statistically (prediction quality, as in Figure 10) and then
 * in the pipeline (speedup over the always-hit baseline, as in
 * Figure 11), demonstrating the correlation between the two that the
 * paper reports.
 *
 * Usage: hitmiss_demo [trace-name] [length]
 */

#include <cstdlib>
#include <iostream>

#include "common/stats.hh"
#include "core/analysis.hh"
#include "core/runner.hh"

using namespace lrs;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "gcc";
    const std::uint64_t length =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 150000;

    auto trace = TraceLibrary::make(TraceLibrary::byName(name, length));
    std::cout << "hit-miss prediction on trace '" << name << "' ("
              << length << " uops)\n\n";

    // Part 1: statistical quality (no effect on scheduling).
    std::cout << "--- statistical accuracy ---\n";
    TextTable st({"predictor", "KB", "miss rate", "coverage (AM-PM)",
                  "false miss (AH-PM)"});
    for (const char *which : {"local", "chooser", "local+timing"}) {
        auto hmp = makeHmp(which);
        const auto s = analyzeHitMiss(*trace, *hmp);
        st.startRow();
        st.cell(which);
        st.cell(static_cast<double>(hmp->storageBits()) / 8192.0, 2);
        st.cellPct(s.missRate(), 2);
        st.cellPct(s.coverage(), 1);
        st.cellPct(s.falseMissFrac(), 2);
    }
    st.print(std::cout);

    // Part 2: pipeline effect on the paper's Figure-11 machine
    // (4 general units, 2 memory units, perfect disambiguation).
    std::cout << "\n--- pipeline speedup over always-hit ---\n";
    MachineConfig cfg;
    cfg.scheme = OrderingScheme::Perfect;
    cfg.intUnits = 4;
    cfg.memUnits = 2;
    cfg.hmp = HmpKind::AlwaysHit;
    const auto baseline = runSim(*trace, cfg);

    TextTable pt({"predictor", "IPC", "speedup", "wasted issues",
                  "AM-PM", "AH-PM"});
    const std::pair<const char *, HmpKind> kinds[] = {
        {"always-hit", HmpKind::AlwaysHit},
        {"local", HmpKind::Local},
        {"chooser", HmpKind::Chooser},
        {"local+timing", HmpKind::LocalTiming},
        {"perfect", HmpKind::Perfect},
    };
    for (const auto &[label, kind] : kinds) {
        cfg.hmp = kind;
        const auto r = runSim(*trace, cfg);
        pt.startRow();
        pt.cell(label);
        pt.cell(r.ipc(), 2);
        pt.cell(r.speedupOver(baseline), 3);
        pt.cell(strprintf("%llu", static_cast<unsigned long long>(
                                      r.wastedIssues)));
        pt.cell(strprintf("%llu",
                          static_cast<unsigned long long>(r.amPm)));
        pt.cell(strprintf("%llu",
                          static_cast<unsigned long long>(r.ahPm)));
    }
    pt.print(std::cout);

    std::cout << "\nAM-PM (caught misses) buys exact wakeups; AH-PM "
                 "(false miss predictions)\ndelays dependents by the "
                 "hit-indication latency — the asymmetry that makes\n"
                 "the majority chooser attractive (section 2.2).\n";
    return 0;
}
