/**
 * @file
 * Bank prediction for a two-banked L1D.
 *
 * Evaluates the paper's four bank predictors on one trace, then walks
 * the sliced-pipeline policy of section 2.3: high-confidence loads are
 * steered to their predicted bank's pipe, low-confidence loads are
 * replicated to both pipes, and mispredictions re-execute. Prints the
 * resulting effective-bandwidth estimate next to the paper's analytic
 * metric.
 *
 * Usage: bank_scheduling [trace-name] [length] [penalty]
 */

#include <cstdlib>
#include <iostream>

#include "common/stats.hh"
#include "core/analysis.hh"
#include "core/runner.hh"

using namespace lrs;

namespace
{

/** Outcome of replaying the sliced-pipe policy over the load stream. */
struct SlicedPipeStats
{
    std::uint64_t loads = 0;
    std::uint64_t steered = 0;     ///< sent to one predicted bank
    std::uint64_t replicated = 0;  ///< sent to both pipes
    std::uint64_t mispredicted = 0;

    /**
     * Pipe-slots consumed per load: steered loads use one slot,
     * replicated loads two, mispredicted loads re-execute (two more).
     */
    double
    slotsPerLoad() const
    {
        const double slots =
            static_cast<double>(steered) + 2.0 * replicated +
            2.0 * mispredicted;
        return loads ? slots / static_cast<double>(loads) : 0.0;
    }
};

SlicedPipeStats
runSlicedPipe(const VecTrace &trace, BankPredictor &pred)
{
    auto *addr_pred = dynamic_cast<AddressBankPredictor *>(&pred);
    SlicedPipeStats st;
    for (const Uop &u : trace.uops()) {
        if (!u.isLoad())
            continue;
        ++st.loads;
        const unsigned actual =
            static_cast<unsigned>(u.addr / 64) % 2;
        const auto p = pred.predict(u.pc);
        if (p.valid) {
            ++st.steered;
            if (p.bank != actual)
                ++st.mispredicted;
        } else {
            ++st.replicated;
        }
        if (addr_pred)
            addr_pred->updateAddr(u.pc, u.addr);
        else
            pred.update(u.pc, actual);
    }
    return st;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "swim";
    const std::uint64_t length =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 150000;
    const double penalty =
        argc > 3 ? std::strtod(argv[3], nullptr) : 2.0;

    auto trace = TraceLibrary::make(TraceLibrary::byName(name, length));
    std::cout << "bank prediction on trace '" << name << "' ("
              << length << " uops), penalty " << penalty << "\n\n";

    TextTable t({"pred", "KB", "rate", "accuracy", "metric",
                 "slots/load", "mispredicts"});
    const char *preds[] = {"A", "B", "C", "Addr"};
    for (const char *which : preds) {
        std::unique_ptr<BankPredictor> pred;
        if (std::string(which) == "A")
            pred = makeBankPredictorA();
        else if (std::string(which) == "B")
            pred = makeBankPredictorB();
        else if (std::string(which) == "C")
            pred = makeBankPredictorC();
        else
            pred = makeAddressBankPredictor();

        const auto stats = analyzeBank(*trace, *pred);

        // Fresh predictor for the sliced-pipe replay (the analysis
        // above trained this one).
        std::unique_ptr<BankPredictor> pred2;
        if (std::string(which) == "A")
            pred2 = makeBankPredictorA();
        else if (std::string(which) == "B")
            pred2 = makeBankPredictorB();
        else if (std::string(which) == "C")
            pred2 = makeBankPredictorC();
        else
            pred2 = makeAddressBankPredictor();
        const auto pipe = runSlicedPipe(*trace, *pred2);

        t.startRow();
        t.cell(which);
        t.cell(static_cast<double>(pred->storageBits()) / 8192.0, 2);
        t.cellPct(stats.rate(), 1);
        t.cellPct(stats.accuracy(), 2);
        t.cell(stats.metric(penalty), 3);
        t.cell(pipe.slotsPerLoad(), 2);
        t.cell(strprintf("%llu", static_cast<unsigned long long>(
                                     pipe.mispredicted)));
    }
    t.print(std::cout);

    std::cout
        << "\nslots/load approaches 1.0 for an ideal predictor (every "
           "load steered to one\nbank) and 2.0 when everything must be "
           "replicated — the sliced pipe then has\nno advantage over a "
           "single-ported cache (section 2.3).\n";
    return 0;
}
