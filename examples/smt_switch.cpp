/**
 * @file
 * SMT thread-switch walkthrough (paper section 2.2).
 *
 * "Another concept in computer architecture that may benefit from
 * hit-miss prediction is multi threading [Tull95]. Here, the
 * prediction may be used to govern a thread switch if a load is
 * predicted to miss the L2 cache, and suffer the large latency of
 * accessing main memory."
 *
 * This example re-targets the paper's hit-miss predictors at
 * misses-to-memory and sweeps the thread-switch overhead, showing for
 * each trace where switch-on-predicted-miss stops paying.
 *
 * Usage: smt_switch [trace-name] [length]
 */

#include <cstdlib>
#include <iostream>

#include "common/stats.hh"
#include "core/analysis.hh"
#include "trace/library.hh"

using namespace lrs;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "tpcc";
    const std::uint64_t length =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 150000;

    auto trace = TraceLibrary::make(TraceLibrary::byName(name, length));
    std::cout << "thread-switch analysis on trace '" << name << "' ("
              << length << " uops)\n\n";

    // Part 1: how predictable are this trace's memory accesses?
    std::cout << "--- L2 (memory) miss prediction quality ---\n";
    TextTable qt({"predictor", "mem-miss rate", "coverage",
                  "false-switch rate"});
    for (const char *which : {"local", "chooser", "local+timing"}) {
        auto hmp = makeHmp(which);
        const auto st = analyzeHitMiss(*trace, *hmp, {}, 2.0,
                                       MissLevel::L2);
        qt.startRow();
        qt.cell(which);
        qt.cellPct(st.missRate(), 2);
        qt.cellPct(st.coverage(), 1);
        qt.cellPct(st.falseMissFrac(), 2);
    }
    qt.print(std::cout);

    // Part 2: net value of switch-on-predicted-miss as the switch
    // overhead grows.
    std::cout << "\n--- net cycles saved per 1000 loads vs switch "
                 "overhead ---\n";
    TextTable st({"predictor", "ovh=5", "ovh=10", "ovh=20", "ovh=40"});
    for (const char *which : {"local", "chooser"}) {
        st.startRow();
        st.cell(which);
        for (const Cycle ovh : {5u, 10u, 20u, 40u}) {
            auto hmp = makeHmp(which);
            const auto est =
                estimateThreadSwitch(*trace, *hmp, {}, ovh);
            st.cell(est.netSavedPerKiloLoad(), 1);
        }
    }
    st.print(std::cout);

    std::cout << "\nA switch is worth memLatency - overhead cycles "
                 "when the prediction is right\nand costs the overhead "
                 "when it is wrong; memory-resident workloads (tpcc)\n"
                 "stay profitable at overheads cache-resident ones "
                 "(wd) cannot justify.\n";
    return 0;
}
