/**
 * @file
 * Memory-disambiguation design-space explorer.
 *
 * Runs one trace across scheduling-window sizes and CHT organisations
 * and reports, for each point, the speedup of predictor-based ordering
 * over the Traditional scheme plus the prediction quality counters —
 * the workflow an architect would use to size a CHT for a machine.
 *
 * Usage: disambiguation_explorer [trace-name] [length]
 */

#include <cstdlib>
#include <iostream>

#include "common/stats.hh"
#include "core/runner.hh"

using namespace lrs;

namespace
{

ChtParams
makeCht(ChtKind kind, std::size_t entries)
{
    ChtParams p;
    p.kind = kind;
    p.entries = entries;
    p.assoc = 4;
    p.counterBits = kind == ChtKind::Tagless ? 1 : 2;
    p.taglessEntries = 4096;
    p.trackDistance = true;
    return p;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "pm";
    const std::uint64_t length =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 150000;

    auto trace = TraceLibrary::make(TraceLibrary::byName(name, length));
    std::cout << "exploring trace '" << name << "' (" << length
              << " uops)\n\n";

    // Part 1: how much is memory disambiguation worth as the
    // scheduling window grows?
    std::cout << "--- window sweep (Full-2K CHT, exclusive scheme) "
                 "---\n";
    TextTable wt({"window", "Traditional IPC", "Exclusive IPC",
                  "Perfect IPC", "exclusive speedup"});
    for (const int w : {16, 32, 64, 128}) {
        MachineConfig cfg;
        cfg.schedWindow = w;
        cfg.cht = makeCht(ChtKind::Full, 2048);

        cfg.scheme = OrderingScheme::Traditional;
        const auto trad = runSim(*trace, cfg);
        cfg.scheme = OrderingScheme::Exclusive;
        const auto excl = runSim(*trace, cfg);
        cfg.scheme = OrderingScheme::Perfect;
        const auto perf = runSim(*trace, cfg);

        wt.startRow();
        wt.cell(strprintf("%d", w));
        wt.cell(trad.ipc(), 2);
        wt.cell(excl.ipc(), 2);
        wt.cell(perf.ipc(), 2);
        wt.cell(excl.speedupOver(trad), 3);
    }
    wt.print(std::cout);

    // Part 2: CHT organisation shoot-out at the base window.
    std::cout << "\n--- CHT organisations (inclusive scheme, 32-entry "
                 "window) ---\n";
    TextTable ct({"CHT", "bits", "speedup", "AC-PC", "AC-PNC",
                  "ANC-PC", "penalized"});
    MachineConfig base;
    base.scheme = OrderingScheme::Traditional;
    const auto trad = runSim(*trace, base);

    for (const auto kind :
         {ChtKind::Full, ChtKind::TagOnly, ChtKind::Tagless,
          ChtKind::Combined}) {
        for (const std::size_t entries : {512, 2048}) {
            MachineConfig cfg;
            cfg.scheme = OrderingScheme::Inclusive;
            cfg.cht = makeCht(kind, entries);
            const auto r = runSim(*trace, cfg);
            const double conf =
                static_cast<double>(r.conflicting());
            ct.startRow();
            ct.cell(Cht(cfg.cht).name());
            ct.cell(strprintf("%zu", Cht(cfg.cht).storageBits()));
            ct.cell(r.speedupOver(trad), 3);
            ct.cellPct(conf ? r.acPc / conf : 0, 2);
            ct.cellPct(conf ? r.acPnc / conf : 0, 2);
            ct.cellPct(conf ? r.ancPc / conf : 0, 2);
            ct.cell(strprintf("%llu", static_cast<unsigned long long>(
                                          r.collisionPenalties)));
        }
    }
    ct.print(std::cout);

    std::cout << "\nReading guide: AC-PC is a caught collision (good), "
                 "AC-PNC risks a re-execution,\nANC-PC is a lost "
                 "bypassing opportunity. The sticky TagOnly CHT "
                 "minimises AC-PNC;\nthe Full CHT minimises ANC-PC "
                 "(section 4.1 of the paper).\n";
    return 0;
}
