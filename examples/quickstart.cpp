/**
 * @file
 * Quickstart: generate one synthetic trace, run it through the
 * baseline machine under each memory ordering scheme, and print the
 * load classification and speedups — the 60-second tour of the
 * library's public API.
 *
 * Usage: quickstart [trace-name] [length]
 */

#include <cstdlib>
#include <iostream>

#include "common/stats.hh"
#include "core/runner.hh"

int
main(int argc, char **argv)
{
    using namespace lrs;

    const std::string name = argc > 1 ? argv[1] : "wd";
    const std::uint64_t length =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 200000;

    // 1. Pick a named trace from the library and generate it.
    const TraceParams params = TraceLibrary::byName(name, length);
    auto trace = TraceLibrary::make(params);
    std::cout << "trace '" << params.name << "' ("
              << traceGroupName(params.group) << "), "
              << trace->size() << " uops\n\n";

    // 2. Configure the paper's baseline machine; the CHT used by the
    //    predictor-based schemes is a 2K-entry 4-way Full CHT with
    //    2-bit counters (section 4.1).
    MachineConfig cfg;
    cfg.cht.kind = ChtKind::Full;
    cfg.cht.entries = 2048;
    cfg.cht.assoc = 4;
    cfg.cht.counterBits = 2;
    cfg.cht.trackDistance = true;

    // 3. Run every ordering scheme and report.
    auto results = runAllSchemes(*trace, cfg);
    const SimResult &base = results.front(); // Traditional

    TextTable t({"scheme", "cycles", "IPC", "speedup", "no-conf",
                 "ANC", "AC", "penalized", "wasted"});
    for (std::size_t i = 0; i < results.size(); ++i) {
        const SimResult &r = results[i];
        const double n = static_cast<double>(r.classifiedLoads());
        t.startRow();
        t.cell(orderingSchemeName(allSchemes()[i]));
        t.cell(strprintf("%llu",
                         static_cast<unsigned long long>(r.cycles)));
        t.cell(r.ipc(), 2);
        t.cell(r.speedupOver(base), 3);
        t.cellPct(n ? r.notConflicting / n : 0, 1);
        t.cellPct(n ? (r.ancPnc + r.ancPc) / n : 0, 1);
        t.cellPct(n ? (r.acPnc + r.acPc) / n : 0, 1);
        t.cell(strprintf("%llu", static_cast<unsigned long long>(
                                     r.collisionPenalties)));
        t.cell(strprintf("%llu", static_cast<unsigned long long>(
                                     r.wastedIssues)));
    }
    t.print(std::cout);

    std::cout << "\nbranch mispredict rate: "
              << strprintf("%.2f%%",
                           100.0 * base.branchMispredicts /
                               std::max<std::uint64_t>(1,
                                                       base.branches))
              << ", L1 miss rate: "
              << strprintf("%.2f%%", 100.0 * base.l1Misses /
                                         std::max<std::uint64_t>(
                                             1, base.loads))
              << "\n";
    return 0;
}
