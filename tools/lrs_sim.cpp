/**
 * @file
 * lrs_sim — command-line front end to the simulator.
 *
 * Runs a named synthetic trace or an imported trace file through an
 * arbitrary machine configuration and prints the full result block;
 * can also export generated traces for external use.
 *
 * Examples:
 *   lrs_sim --trace wd --scheme exclusive --window 64
 *   lrs_sim --trace tpcc --compare-schemes
 *   lrs_sim --trace swim --bank-mode sliced --bank-pred addr
 *   lrs_sim --trace gcc --len 500000 --dump-trace gcc.lrstrc
 *   lrs_sim --trace-file gcc.lrstrc --hmp local+timing
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>

#include "common/json.hh"
#include "common/stats.hh"
#include "core/config_io.hh"
#include "core/runner.hh"
#include "core/tracer.hh"
#include "trace/serialize.hh"

using namespace lrs;

namespace
{

[[noreturn]] void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [options]\n"
        "  --trace NAME          named synthetic trace (e.g. wd, gcc,"
        " swim, tpcc)\n"
        "  --trace-file PATH     run a serialised trace file instead\n"
        "  --len N               uops to generate (default 200000)\n"
        "  --scheme S            traditional|opportunistic|postponing|"
        "inclusive|\n"
        "                        exclusive|perfect|storebarrier|storesets\n"
        "  --hmp H               always-hit|local|chooser|local+timing|"
        "perfect\n"
        "  --bank-mode M         multiported|conventional|dual|sliced\n"
        "  --bank-pred P         none|A|B|C|addr\n"
        "  --banks N             cache banks (power of two, <= 8)\n"
        "  --window N            scheduling window entries\n"
        "  --int N / --mem N     execution unit counts\n"
        "  --cht KIND            full|tagonly|tagless|combined\n"
        "  --cht-entries N       CHT entries\n"
        "  --config PATH         load a machine config file (see "
        "--dump-config)\n"
        "  --dump-config         print the effective config as INI "
        "and exit\n"
        "  --compare-schemes     run all ordering schemes and report "
        "speedups\n"
        "  --dump-trace PATH     write the generated trace and exit\n"
        "  --json PATH           write the result (all counters, "
        "interval series,\n"
        "                        stats registry) as JSON\n"
        "  --stats-interval N    snapshot interval metrics every N "
        "cycles\n"
        "  --trace-events PATH   record per-uop pipeline events and "
        "write a Chrome\n"
        "                        trace_event file (chrome://tracing / "
        "Perfetto)\n"
        "  --trace-buf N         event ring-buffer capacity "
        "(default 262144)\n",
        argv0);
    std::exit(2);
}

void
printResult(const SimResult &r)
{
    const auto pct = [&](std::uint64_t n, std::uint64_t d) {
        return d ? 100.0 * static_cast<double>(n) /
                       static_cast<double>(d)
                 : 0.0;
    };
    std::printf("trace          %s\n", r.trace.c_str());
    std::printf("config         %s\n", r.config.c_str());
    std::printf("cycles         %llu\n",
                static_cast<unsigned long long>(r.cycles));
    std::printf("uops           %llu (IPC %.2f)\n",
                static_cast<unsigned long long>(r.uops), r.ipc());
    std::printf("loads          %llu (%.1f%% of uops)\n",
                static_cast<unsigned long long>(r.loads),
                pct(r.loads, r.uops));
    std::printf("  no-conflict  %.1f%%   ANC %.1f%%   AC %.1f%%\n",
                pct(r.notConflicting, r.classifiedLoads()),
                pct(r.ancPnc + r.ancPc, r.classifiedLoads()),
                pct(r.actuallyColliding(), r.classifiedLoads()));
    std::printf("  pred mix     AC-PC %.2f%%  AC-PNC %.2f%%  "
                "ANC-PC %.2f%%\n",
                pct(r.acPc, r.classifiedLoads()),
                pct(r.acPnc, r.classifiedLoads()),
                pct(r.ancPc, r.classifiedLoads()));
    std::printf("  forwarded    %llu   penalized %llu   violations "
                "%llu\n",
                static_cast<unsigned long long>(r.forwarded),
                static_cast<unsigned long long>(r.collisionPenalties),
                static_cast<unsigned long long>(r.orderViolations));
    std::printf("L1 misses      %llu (%.2f%% of loads, %llu dynamic)\n",
                static_cast<unsigned long long>(r.l1Misses),
                pct(r.l1Misses, r.loads),
                static_cast<unsigned long long>(r.dynamicMisses));
    std::printf("hit-miss pred  AH-PH %llu  AH-PM %llu  AM-PH %llu  "
                "AM-PM %llu\n",
                static_cast<unsigned long long>(r.ahPh),
                static_cast<unsigned long long>(r.ahPm),
                static_cast<unsigned long long>(r.amPh),
                static_cast<unsigned long long>(r.amPm));
    std::printf("branches       %llu (%.2f%% mispredicted)\n",
                static_cast<unsigned long long>(r.branches),
                pct(r.branchMispredicts, r.branches));
    std::printf("issue waste    %llu wasted slots, %llu replayed "
                "uops\n",
                static_cast<unsigned long long>(r.wastedIssues),
                static_cast<unsigned long long>(r.replayedUops));
    if (r.bankConflicts || r.bankMispredicts || r.bankReplications) {
        std::printf("banked pipe    %llu conflicts, %llu mispredicts, "
                    "%llu replications\n",
                    static_cast<unsigned long long>(r.bankConflicts),
                    static_cast<unsigned long long>(r.bankMispredicts),
                    static_cast<unsigned long long>(
                        r.bankReplications));
    }
}

} // namespace

namespace
{

void
writeTextFile(const std::string &path, const std::string &text)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        throw std::runtime_error("cannot open " + path);
    os << text;
    if (!os)
        throw std::runtime_error("write failed: " + path);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string trace_name = "wd";
    std::string trace_file;
    std::string dump_path;
    std::string json_path;
    std::string trace_events_path;
    std::uint64_t trace_buf = PipelineTracer::kDefaultCapacity;
    std::uint64_t len = 200000;
    bool compare = false;

    MachineConfig cfg;
    cfg.cht.trackDistance = true;

    try {
        for (int i = 1; i < argc; ++i) {
            const std::string a = argv[i];
            auto next = [&]() -> std::string {
                if (i + 1 >= argc)
                    usage(argv[0]);
                return argv[++i];
            };
            if (a == "--trace") trace_name = next();
            else if (a == "--trace-file") trace_file = next();
            else if (a == "--len") len = std::stoull(next());
            else if (a == "--scheme") cfg.scheme = parseOrderingScheme(next());
            else if (a == "--hmp") cfg.hmp = parseHmpKind(next());
            else if (a == "--bank-mode")
                cfg.bankMode = parseBankMode(next());
            else if (a == "--bank-pred")
                cfg.bankPred = parseBankPredKind(next());
            else if (a == "--banks")
                cfg.numBanks = static_cast<unsigned>(std::stoul(next()));
            else if (a == "--window") cfg.schedWindow = std::stoi(next());
            else if (a == "--int") cfg.intUnits = std::stoi(next());
            else if (a == "--mem") cfg.memUnits = std::stoi(next());
            else if (a == "--cht") cfg.cht.kind = parseChtKind(next());
            else if (a == "--cht-entries")
                cfg.cht.entries = std::stoull(next());
            else if (a == "--config")
                cfg = machineConfigFromFile(next(), cfg);
            else if (a == "--dump-config") {
                std::cout << machineConfigToIni(cfg);
                return 0;
            }
            else if (a == "--compare-schemes") compare = true;
            else if (a == "--dump-trace") dump_path = next();
            else if (a == "--json") json_path = next();
            else if (a == "--stats-interval")
                cfg.statsInterval = std::stoull(next());
            else if (a == "--trace-events")
                trace_events_path = next();
            else if (a == "--trace-buf")
                trace_buf = std::stoull(next());
            else if (a == "--help" || a == "-h") usage(argv[0]);
            else {
                std::fprintf(stderr, "unknown option: %s\n", a.c_str());
                usage(argv[0]);
            }
        }

        std::unique_ptr<VecTrace> trace;
        if (!trace_file.empty())
            trace = readTraceFile(trace_file);
        else
            trace = TraceLibrary::make(
                TraceLibrary::byName(trace_name, len));

        if (!dump_path.empty()) {
            writeTraceFile(dump_path, *trace);
            std::printf("wrote %zu uops to %s\n", trace->size(),
                        dump_path.c_str());
            return 0;
        }

        if (compare) {
            const auto results = runAllSchemes(*trace, cfg);
            const SimResult &base = results.front();
            TextTable t({"scheme", "cycles", "IPC", "speedup"});
            for (std::size_t i = 0; i < results.size(); ++i) {
                t.startRow();
                t.cell(orderingSchemeName(allSchemes()[i]));
                t.cell(strprintf("%llu", static_cast<unsigned long long>(
                                             results[i].cycles)));
                t.cell(results[i].ipc(), 2);
                t.cell(results[i].speedupOver(base), 3);
            }
            t.print(std::cout);
            if (!json_path.empty()) {
                json::Value doc = json::Value::object();
                json::Value schemes = json::Value::array();
                for (const auto &r : results)
                    schemes.push(r.toJson());
                doc.set("schemes", std::move(schemes));
                writeTextFile(json_path, doc.dump(2));
            }
            return 0;
        }

        OooCore core(cfg);
        std::unique_ptr<PipelineTracer> tracer;
        if (!trace_events_path.empty()) {
            tracer = std::make_unique<PipelineTracer>(trace_buf);
            core.attachTracer(tracer.get());
        }
        const SimResult r = core.run(*trace);
        printResult(r);
        if (!json_path.empty()) {
            json::Value doc = r.toJson();
            doc.set("registry", core.stats().toJson());
            writeTextFile(json_path, doc.dump(2));
        }
        if (tracer)
            tracer->writeChromeTrace(trace_events_path);
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
