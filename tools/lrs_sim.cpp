/**
 * @file
 * lrs_sim — command-line front end to the simulator.
 *
 * Runs a named synthetic trace or an imported trace file through an
 * arbitrary machine configuration and prints the full result block;
 * can also export generated traces for external use.
 *
 * Examples:
 *   lrs_sim --trace wd --scheme exclusive --window 64
 *   lrs_sim --trace tpcc --compare-schemes
 *   lrs_sim --trace swim --bank-mode sliced --bank-pred addr
 *   lrs_sim --trace gcc --len 500000 --dump-trace gcc.lrstrc
 *   lrs_sim --trace-file gcc.lrstrc --hmp local+timing
 */

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>

#include <netdb.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/buildinfo.hh"
#include "common/io.hh"
#include "common/diag.hh"
#include "common/fault_injector.hh"
#include "common/histogram.hh"
#include "common/json.hh"
#include "common/profiler.hh"
#include "common/stats.hh"
#include "core/config_io.hh"
#include "core/core.hh"
#include "core/flight_recorder.hh"
#include "core/grid.hh"
#include "core/parallel.hh"
#include "core/runner.hh"
#include "core/snapshot.hh"
#include "core/supervisor.hh"
#include "core/tracer.hh"
#include "trace/champsim_reader.hh"
#include "trace/library.hh"
#include "service/protocol.hh"
#include "trace/serialize.hh"

using namespace lrs;

extern "C" void
lrsOnSweepSignal(int)
{
    // Async-signal-safe: a relaxed store into an atomic flag. The
    // core's cycle loop and the sweep supervisor poll it; cells
    // unwind cooperatively, the journal and a partial JSON report
    // are flushed, and the process exits with kExitInterrupted.
    requestSweepInterrupt();
}

namespace
{

// Exit codes (docs/ROBUSTNESS.md): 0 success, 1 runtime failure
// (including audit violations), 2 usage, 3 invalid configuration,
// 4 I/O or trace-content failure, 5 interrupted by SIGINT/SIGTERM
// (journaled sweep cells are resumable with --resume).
constexpr int kExitOk = 0;
constexpr int kExitRuntime = 1;
constexpr int kExitUsage = 2;
constexpr int kExitConfig = 3;
constexpr int kExitIo = 4;
constexpr int kExitInterrupted = 5;

[[noreturn]] void
usage(FILE *out, int code, const char *argv0)
{
    std::fprintf(
        out,
        "usage: %s [options]\n"
        "  --trace NAME          named synthetic trace (e.g. wd, gcc,"
        " swim, tpcc)\n"
        "  --trace-file PATH     run a serialised trace file instead\n"
        "  --champsim PATH       ingest a raw ChampSim input_instr "
        "trace ('-' reads\n"
        "                        stdin); hostile-input-proof — see "
        "docs/TRACES.md\n"
        "                        (--len bounds the instruction count; "
        "--recover and\n"
        "                        --bad-record-budget apply)\n"
        "  --max-pages N         refuse a ChampSim trace touching more "
        "distinct 4KiB\n"
        "                        pages (default 1048576)\n"
        "  --max-file-bytes N    refuse a ChampSim source larger than "
        "N bytes\n"
        "                        (default 2147483648)\n"
        "  --len N               uops to generate (default 200000)\n"
        "  --families            run the adversarial workload families "
        "(spoiler4k,\n"
        "                        flipper, gcmark) under a "
        "predictor-active machine\n"
        "                        and report per-family CHT/HMP/bank "
        "accuracy (adds a\n"
        "                        \"families\" block to --json)\n"
        "  --scheme S            traditional|opportunistic|postponing|"
        "inclusive|\n"
        "                        exclusive|perfect|storebarrier|storesets\n"
        "  --hmp H               always-hit|local|chooser|local+timing|"
        "perfect\n"
        "  --bank-mode M         multiported|conventional|dual|sliced\n"
        "  --bank-pred P         none|A|B|C|addr\n"
        "  --banks N             cache banks (power of two, <= 8)\n"
        "  --window N            scheduling window entries\n"
        "  --int N / --mem N     execution unit counts\n"
        "  --cht KIND            full|tagonly|tagless|combined\n"
        "  --cht-entries N       CHT entries\n"
        "  --config PATH         load a machine config file (see "
        "--dump-config)\n"
        "  --dump-config         print the effective config as INI "
        "and exit\n"
        "  --compare-schemes     run all ordering schemes and report "
        "speedups\n"
        "  --batch PATH          run a (traces x schemes) grid from a "
        "grid file\n"
        "                        (keys: traces, schemes, len, jobs; "
        "any other\n"
        "                        \"key = value\" line is the shared "
        "machine config)\n"
        "  --jobs N              worker threads for --batch and "
        "--compare-schemes\n"
        "                        (default: LRS_JOBS, else hardware "
        "concurrency;\n"
        "                        results are identical for any N)\n"
        "  --dump-trace PATH     write the generated trace and exit\n"
        "  --json PATH           write the result (all counters, "
        "interval series,\n"
        "                        stats registry) as JSON; '-' writes "
        "JSON to stdout\n"
        "                        (human-readable output then goes to "
        "stderr)\n"
        "  --stats-interval N    snapshot interval metrics every N "
        "cycles\n"
        "  --trace-events PATH   record per-uop pipeline events and "
        "write a Chrome\n"
        "                        trace_event file (chrome://tracing / "
        "Perfetto)\n"
        "  --trace-buf N         event ring-buffer capacity "
        "(default 262144)\n"
        "telemetry (docs/OBSERVABILITY.md):\n"
        "  --histograms          collect deterministic log2 "
        "histograms (load-to-use\n"
        "                        delay, replay distance, occupancy, "
        "predictor\n"
        "                        confidence); exported under "
        "\"histograms\"\n"
        "  --profile             time the simulator's own stages "
        "(host clock) and\n"
        "                        report the breakdown + uops/sec "
        "(stderr and a\n"
        "                        \"profile\" JSON block)\n"
        "  --throughput          measure kernel throughput (uops/sec) "
        "with the\n"
        "                        idle-cycle skip-ahead off and on over "
        "deterministic\n"
        "                        workload families, verifying "
        "bit-identical results\n"
        "                        (adds a \"throughput\" JSON block; "
        "--champsim adds\n"
        "                        that trace as an extra family; see "
        "docs/PERFORMANCE.md)\n"
        "  --no-skip-ahead       disable the idle-cycle skip-ahead "
        "fast path\n"
        "                        (results are bit-identical either "
        "way)\n"
        "  --flight-recorder DIR keep a per-cell event ring during "
        "--batch; a failed\n"
        "                        cell leaves DIR/cell_N.flight.jsonl "
        "(CRC-framed)\n"
        "  --progress[=FD]       stream one JSON heartbeat line per "
        "finished --batch\n"
        "                        cell to FD (default 2, stderr)\n"
        "  --check-journal PATH  validate a CRC-framed JSONL file "
        "(checkpoint journal,\n"
        "                        flight dump, or machine snapshot — "
        "snapshots get the\n"
        "                        full strict structural check); exit "
        "nonzero on damage\n"
        "machine snapshots (docs/ROBUSTNESS.md, \"Snapshots\"):\n"
        "  --snapshot FILE       checkpoint the machine state to FILE "
        "during a single\n"
        "                        run (atomic tmp+rename; requires "
        "--snapshot-after)\n"
        "  --snapshot-after N    cycle to checkpoint at (the run then "
        "continues to\n"
        "                        completion as usual)\n"
        "  --from-snapshot FILE  restore FILE instead of starting "
        "cold and simulate\n"
        "                        the remainder; stats are "
        "bit-identical to the\n"
        "                        uninterrupted run under the same "
        "config\n"
        "  --validate-snapshot   prove that contract: run everything "
        "twice (full, and\n"
        "                        through a save/restore at "
        "--snapshot-after, default\n"
        "                        half the run; for --batch: "
        "warmup_snapshot or half,\n"
        "                        per cell) and fail on any "
        "non-identical statistic\n"
        "                        (grid key warmup_snapshot=N warms "
        "each trace once and\n"
        "                        forks every scheme cell from the "
        "checkpoint)\n"
        "robustness (docs/ROBUSTNESS.md):\n"
        "  --audit               audit ROB/window/MOB invariants "
        "(LRS_AUDIT=1)\n"
        "  --audit-interval N    audit every N cycles (implies "
        "--audit; default 8192)\n"
        "  --mob-partial-bits N  MOB partial-address disambiguation "
        "width (0 = full\n"
        "                        addresses; 6..48 enables the 4K-alias "
        "stall model\n"
        "                        and the mob.partial_* counters)\n"
        "  --recover             skip malformed trace records instead "
        "of aborting\n"
        "  --bad-record-budget N abort after N skipped records "
        "(default unlimited)\n"
        "  --inject-trace-faults corrupt the trace through the fault "
        "injector and\n"
        "                        read it back in recovery mode\n"
        "  --fault-seed N        fault injector seed "
        "(LRS_FAULT_SEED)\n"
        "  --fault-trace-rate R  per-record corruption probability "
        "(LRS_FAULT_TRACE_RATE)\n"
        "  --fault-bit-rate R    per-load CHT bit-flip probability "
        "(LRS_FAULT_BIT_RATE)\n"
        "  --fault-lat-rate R    per-access latency perturbation "
        "probability (LRS_FAULT_LAT_RATE)\n"
        "resilient sweeps (docs/ROBUSTNESS.md, \"Sweep "
        "supervisor\"):\n"
        "  --journal PATH        append one crash-safe checkpoint "
        "record per finished\n"
        "                        --batch cell (CRC-guarded JSONL, "
        "fsync per record)\n"
        "  --resume [PATH]       validate the journal against the "
        "grid, skip cells it\n"
        "                        records as OK, and keep appending to "
        "it (PATH may be\n"
        "                        omitted when --journal PATH names "
        "the journal)\n"
        "  --retries N           re-run FAILED/TIMEOUT/CRASHED cells "
        "up to N extra times\n"
        "  --isolate             fork each cell into a subprocess; a "
        "crash (SIGSEGV,\n"
        "                        abort) marks only that cell "
        "CRASHED\n"
        "  --cell-timeout-ms N   wall-clock watchdog per isolated "
        "cell (SIGKILL +\n"
        "                        TIMEOUT on expiry; 0 disables)\n"
        "  --max-cycles N        deterministic per-run cycle budget; "
        "exceeding it is a\n"
        "                        TIMEOUT outcome (0 disables)\n"
        "sweep service client (docs/SERVICE.md):\n"
        "  --submit ADDR         send the --batch grid to a running "
        "lrs_simd service\n"
        "                        (ADDR with a '/' is a Unix socket "
        "path, else\n"
        "                        host:port) and stream its raw JSONL "
        "result records\n"
        "                        (ack/cell/done) to stdout\n"
        "  --attach N            with --submit: replay submission N's "
        "result stream\n"
        "                        instead of submitting a new grid\n"
        "exit codes: 0 ok, 1 runtime/audit failure, 2 usage, "
        "3 bad config, 4 I/O,\n"
        "            5 interrupted (SIGINT/SIGTERM; resume with "
        "--resume)\n",
        argv0);
    std::exit(code);
}

void
printResult(FILE *out, const SimResult &r)
{
    const auto pct = [&](std::uint64_t n, std::uint64_t d) {
        return d ? 100.0 * static_cast<double>(n) /
                       static_cast<double>(d)
                 : 0.0;
    };
    std::fprintf(out, "trace          %s\n", r.trace.c_str());
    std::fprintf(out, "config         %s\n", r.config.c_str());
    std::fprintf(out, "cycles         %llu\n",
                 static_cast<unsigned long long>(r.cycles));
    std::fprintf(out, "uops           %llu (IPC %.2f)\n",
                 static_cast<unsigned long long>(r.uops), r.ipc());
    std::fprintf(out, "loads          %llu (%.1f%% of uops)\n",
                 static_cast<unsigned long long>(r.loads),
                 pct(r.loads, r.uops));
    std::fprintf(out,
                 "  no-conflict  %.1f%%   ANC %.1f%%   AC %.1f%%\n",
                 pct(r.notConflicting, r.classifiedLoads()),
                 pct(r.ancPnc + r.ancPc, r.classifiedLoads()),
                 pct(r.actuallyColliding(), r.classifiedLoads()));
    std::fprintf(out,
                 "  pred mix     AC-PC %.2f%%  AC-PNC %.2f%%  "
                 "ANC-PC %.2f%%\n",
                 pct(r.acPc, r.classifiedLoads()),
                 pct(r.acPnc, r.classifiedLoads()),
                 pct(r.ancPc, r.classifiedLoads()));
    std::fprintf(out,
                 "  forwarded    %llu   penalized %llu   violations "
                 "%llu\n",
                 static_cast<unsigned long long>(r.forwarded),
                 static_cast<unsigned long long>(r.collisionPenalties),
                 static_cast<unsigned long long>(r.orderViolations));
    std::fprintf(out,
                 "L1 misses      %llu (%.2f%% of loads, %llu "
                 "dynamic)\n",
                 static_cast<unsigned long long>(r.l1Misses),
                 pct(r.l1Misses, r.loads),
                 static_cast<unsigned long long>(r.dynamicMisses));
    std::fprintf(out,
                 "hit-miss pred  AH-PH %llu  AH-PM %llu  AM-PH %llu  "
                 "AM-PM %llu\n",
                 static_cast<unsigned long long>(r.ahPh),
                 static_cast<unsigned long long>(r.ahPm),
                 static_cast<unsigned long long>(r.amPh),
                 static_cast<unsigned long long>(r.amPm));
    std::fprintf(out, "branches       %llu (%.2f%% mispredicted)\n",
                 static_cast<unsigned long long>(r.branches),
                 pct(r.branchMispredicts, r.branches));
    std::fprintf(out,
                 "issue waste    %llu wasted slots, %llu replayed "
                 "uops\n",
                 static_cast<unsigned long long>(r.wastedIssues),
                 static_cast<unsigned long long>(r.replayedUops));
    if (r.bankConflicts || r.bankMispredicts || r.bankReplications) {
        std::fprintf(
            out,
            "banked pipe    %llu conflicts, %llu mispredicts, "
            "%llu replications\n",
            static_cast<unsigned long long>(r.bankConflicts),
            static_cast<unsigned long long>(r.bankMispredicts),
            static_cast<unsigned long long>(r.bankReplications));
    }
}

} // namespace

namespace
{

void
writeTextFile(const std::string &path, const std::string &text)
{
    std::ofstream os(path, std::ios::binary);
    if (!os) {
        throw IoError(makeDiag(DiagCode::IoOpenFailed, "lrs_sim",
                               "path", "cannot open " + path));
    }
    os << text;
    if (!os) {
        throw IoError(makeDiag(DiagCode::IoWriteFailed, "lrs_sim",
                               "path", "write failed: " + path));
    }
}

/**
 * Emit a JSON document to a path, or to stdout for "-". Every
 * top-level export leads with the "build" provenance block (compiler,
 * build type, sanitizer mode, git SHA — common/buildinfo.hh) as its
 * first member, so a result file always states which binary produced
 * it. Provenance lives only here, at the document root: per-cell
 * result documents (journal records, resume restores) never carry it,
 * keeping resumed sweeps byte-identical to uninterrupted ones.
 */
void
emitJson(const std::string &path, const json::Value &doc)
{
    json::Value out = json::Value::object();
    out.set("build", buildProvenanceJson());
    for (const auto &m : doc.members())
        out.set(m.first, m.second);
    if (path == "-") {
        std::cout << out.dump(2) << "\n";
        return;
    }
    writeTextFile(path, out.dump(2));
}

/**
 * Run a batch grid under the sweep supervisor and print one table row
 * per (trace, scheme) cell, in grid order regardless of worker count.
 *
 * Resumed (journal-restored) cells re-emit their stored result, so
 * the table and the JSON document of an interrupted-then-resumed
 * sweep are byte-identical to an uninterrupted run — their status
 * column deliberately reads "OK", and the sweep.* accounting goes to
 * stderr instead of the report.
 *
 * Returns kExitInterrupted if the sweep was cut short (partial JSON
 * still written), kExitRuntime if any cell finally failed.
 */
int
runBatch(const std::string &path, unsigned jobs_flag,
         const std::string &json_path, SweepOptions sopts,
         std::uint64_t max_cycles, bool histograms, bool profile,
         const std::string &flight_dir, bool validate_snapshot)
{
    BatchGrid grid = parseBatchGridFile(path);
    if (max_cycles)
        grid.base.maxCycles = max_cycles;
    if (histograms)
        grid.base.collectHistograms = true;
    const bool hist_on = grid.base.collectHistograms;

    std::vector<SimJob> jobs;
    std::vector<std::string> keys;
    buildGridJobs(grid, jobs, keys);

    sopts.workers = jobs_flag ? jobs_flag : grid.jobs;

    // Warm-once sampling: checkpoint each trace once under the base
    // config, then fork every scheme cell from the checkpoint. In
    // --validate-snapshot mode cells instead run cold AND through a
    // same-config save/restore (below), so the fork is skipped — the
    // validation target is the bit-identity contract, and cross-scheme
    // forks are a deliberate protocol change, not bit-equivalence.
    std::string snap_dir;
    if (grid.warmupSnapshot || validate_snapshot)
        snap_dir = snapshotDirFor(grid, path);
    if (grid.warmupSnapshot && !validate_snapshot) {
        const auto warm0 = std::chrono::steady_clock::now();
        prepareWarmupSnapshots(grid, snap_dir, sopts.workers);
        attachWarmupSnapshots(grid, snap_dir, jobs);
        const double warm_wall =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - warm0)
                .count();
        std::fprintf(
            stderr,
            "warmup: %zu trace(s) checkpointed at cycle %llu in "
            "%.2fs (%s); %zu cell(s) fork from the checkpoints\n",
            grid.traces.size(),
            static_cast<unsigned long long>(grid.warmupSnapshot),
            warm_wall, snap_dir.c_str(), jobs.size());
    } else if (validate_snapshot) {
        std::error_code ec;
        std::filesystem::create_directories(snap_dir, ec);
        if (ec) {
            throw IoError(makeDiag(DiagCode::IoOpenFailed, "lrs_sim",
                                   "validate-snapshot",
                                   "cannot create " + snap_dir + ": " +
                                       ec.message()));
        }
    }

    // Chaos hook for tools/chaos_sweep.sh and the isolation tests:
    // LRS_CHAOS_CRASH_CELL names a cell that raises
    // LRS_CHAOS_CRASH_SIG (default SIGSEGV) instead of simulating.
    // Without --isolate that kills the whole sweep — which is exactly
    // the crash-mid-sweep scenario the journal exists for.
    const std::uint64_t chaos_cell =
        envU64("LRS_CHAOS_CRASH_CELL", ~std::uint64_t{0});
    const int chaos_sig = static_cast<int>(
        envU64("LRS_CHAOS_CRASH_SIG", SIGSEGV));

    // Per-cell flight-recorder dump paths. The recorder is armed
    // (identity + initial snapshot on disk) *before* the chaos hook
    // fires, so even a cell SIGKILLed on entry leaves a CRC-valid
    // dump for the failure entry to reference.
    const auto flightPath = [&](std::size_t cell) {
        return flight_dir + "/cell_" + std::to_string(cell) +
               ".flight.jsonl";
    };
    if (!flight_dir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(flight_dir, ec);
        if (ec) {
            throw IoError(makeDiag(DiagCode::IoOpenFailed, "lrs_sim",
                                   "flight-recorder",
                                   "cannot create " + flight_dir +
                                       ": " + ec.message()));
        }
    }

    SweepSupervisor sup(sopts);
    const auto wall0 = std::chrono::steady_clock::now();
    const std::vector<JobOutcome> outcomes =
        sup.run(jobs.size(), keys, [&](std::size_t cell, unsigned) {
            std::unique_ptr<FlightRecorder> fr;
            if (!flight_dir.empty()) {
                fr = std::make_unique<FlightRecorder>();
                fr->setIdentity(cell, keys[cell]);
                fr->setDumpPath(flightPath(cell));
            }
            if (cell == chaos_cell)
                ::raise(chaos_sig);
            JobOutcome o = runOneSimJob(jobs[cell], fr.get());
            if (validate_snapshot && o.status == CellStatus::Ok) {
                // Same-config save/restore must reproduce the full
                // run's statistics bit for bit (every counter,
                // interval sample and histogram bucket — doubles
                // compared as IEEE-754 bit patterns).
                try {
                    const Cycle stop = grid.warmupSnapshot
                                           ? grid.warmupSnapshot
                                           : o.result.cycles / 2;
                    const std::string spath =
                        snap_dir + "/validate_cell_" +
                        std::to_string(cell) + ".snap";
                    {
                        auto trace = TraceLibrary::make(
                            jobs[cell].trace);
                        OooCore warm(jobs[cell].cfg);
                        warm.beginRun(*trace);
                        warm.advanceTo(*trace, stop);
                        writeSnapshot(spath, warm, *trace, stop);
                    }
                    auto trace =
                        TraceLibrary::make(jobs[cell].trace);
                    OooCore resumed(jobs[cell].cfg);
                    loadSnapshotInto(spath, resumed, *trace);
                    resumed.advanceTo(*trace);
                    const SimResult rr = resumed.finishRun();
                    std::remove(spath.c_str());
                    if (rr.saveState().dump(0) !=
                        o.result.saveState().dump(0)) {
                        o.status = CellStatus::Failed;
                        o.failed = true;
                        o.code = diagCodeName(DiagCode::DataInvalid);
                        o.error = "snapshot round-trip diverged from "
                                  "the full run at checkpoint cycle " +
                                  std::to_string(stop);
                    }
                } catch (const std::exception &e) {
                    classifyJobException(o, e);
                }
            }
            if (fr && o.status == CellStatus::Ok)
                fr->removeDump();
            return o;
        });
    const double wall =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - wall0)
            .count();

    bool any_gave_up = false;
    TextTable t({"trace", "scheme", "status", "cycles", "IPC",
                 "speedup"});
    json::Value rows = json::Value::array();
    json::Value fails = json::Value::array();
    const std::size_t nschemes = grid.schemes.size();
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        const JobOutcome &o = outcomes[i];
        const std::string &trace = grid.traces[i / nschemes];
        const char *scheme =
            orderingSchemeName(grid.schemes[i % nschemes]);
        const bool done = o.status == CellStatus::Ok ||
                          o.status == CellStatus::Skipped;
        t.startRow();
        t.cell(trace);
        t.cell(scheme);
        if (!done) {
            const bool cut =
                o.code == diagCodeName(DiagCode::Interrupted);
            if (!cut) {
                any_gave_up = true;
                std::fprintf(
                    stderr,
                    "batch cell %s %s [%s] after %u attempt(s): %s\n",
                    keys[i].c_str(), cellStatusName(o.status),
                    o.code.c_str(), o.attempts, o.error.c_str());
            }
            t.cell(cellStatusName(o.status));
            t.cell("-");
            t.cell("-");
            t.cell("-");
            json::Value f = json::Value::object();
            f.set("cell", static_cast<std::uint64_t>(i));
            f.set("key", keys[i]);
            f.set("status", cellStatusName(o.status));
            f.set("code", o.code);
            f.set("error", o.error);
            if (o.signal)
                f.set("signal", o.signal);
            f.set("attempts", static_cast<std::uint64_t>(o.attempts));
            if (!flight_dir.empty()) {
                // A dump survives for any cell that got past arming
                // the recorder — including a SIGKILLed child.
                std::error_code ec;
                if (std::filesystem::exists(flightPath(i), ec))
                    f.set("flight_recorder", flightPath(i));
            }
            fails.push(std::move(f));
            continue;
        }
        // Speedup is against the first scheme of the same trace (the
        // grid's baseline column), matching --compare-schemes.
        const JobOutcome &base = outcomes[(i / nschemes) * nschemes];
        t.cell("OK");
        t.cell(strprintf(
            "%llu", static_cast<unsigned long long>(o.result.cycles)));
        t.cell(o.result.ipc(), 2);
        if (base.status == CellStatus::Ok ||
            base.status == CellStatus::Skipped)
            t.cell(o.result.speedupOver(base.result), 3);
        else
            t.cell("-");
        rows.push(o.resultJson.isNull() ? o.result.toJson()
                                        : o.resultJson);
    }
    t.print(json_path == "-" ? std::cerr : std::cout);

    // Fresh simulated uops this run (resumed cells did no host work).
    std::uint64_t fresh_uops = 0;
    for (const JobOutcome &o : outcomes) {
        if (o.status == CellStatus::Ok)
            fresh_uops += o.result.uops;
    }
    if (profile)
        std::fputs(prof::reportText(fresh_uops, wall).c_str(), stderr);

    if (!json_path.empty()) {
        json::Value doc = json::Value::object();
        doc.set("grid", std::move(rows));
        if (hist_on) {
            // Merge per-cell histograms serially in ascending cell-id
            // order — exact u64 adds, so the aggregate is
            // bit-identical for any worker count (the same
            // determinism contract as the table rows). Resumed cells
            // contribute their journaled histograms, so a resumed
            // sweep aggregates identically to an uninterrupted one.
            std::vector<std::string> order;
            std::map<std::string, Log2Histogram> merged;
            for (const JobOutcome &o : outcomes) {
                if (o.status != CellStatus::Ok &&
                    o.status != CellStatus::Skipped)
                    continue;
                const json::Value *h =
                    o.resultJson.isObject()
                        ? o.resultJson.find("histograms")
                        : nullptr;
                if (!h || !h->isObject())
                    continue;
                for (const auto &m : h->members()) {
                    auto it = merged.find(m.first);
                    if (it == merged.end()) {
                        order.push_back(m.first);
                        merged.emplace(
                            m.first, Log2Histogram::fromJson(m.second));
                    } else {
                        it->second.merge(
                            Log2Histogram::fromJson(m.second));
                    }
                }
            }
            json::Value hj = json::Value::object();
            for (const std::string &name : order)
                hj.set(name, merged.at(name).toJson());
            doc.set("histograms", std::move(hj));
        }
        if (profile)
            doc.set("profile", prof::reportJson(fresh_uops, wall));
        if (fails.size())
            doc.set("failures", std::move(fails));
        if (sup.interrupted())
            doc.set("interrupted", true);
        emitJson(json_path, doc);
    }

    const SweepStats &ss = sup.sweepStats();
    const auto u = [](std::uint64_t v) {
        return static_cast<unsigned long long>(v);
    };
    std::fprintf(stderr,
                 "sweep: %llu cells: %llu ok, %llu resumed, %llu "
                 "failed, %llu timeout, %llu crashed, %llu not-run; "
                 "%llu retries, %llu gave up\n",
                 u(ss.cells), u(ss.ok), u(ss.skipped), u(ss.failed),
                 u(ss.timeout), u(ss.crashed), u(ss.interrupted),
                 u(ss.retries), u(ss.gaveUp));
    if (sup.interrupted()) {
        if (!sopts.journalPath.empty()) {
            std::fprintf(stderr,
                         "sweep interrupted; continue with "
                         "--batch %s --resume %s\n",
                         path.c_str(), sopts.journalPath.c_str());
        } else {
            std::fprintf(stderr,
                         "sweep interrupted (no --journal: completed "
                         "cells were not checkpointed)\n");
        }
        return kExitInterrupted;
    }
    return any_gave_up ? kExitRuntime : kExitOk;
}

/**
 * --families: run every adversarial workload family under a machine
 * with all three predictors engaged (CHT-based Inclusive ordering,
 * chooser HMP, sliced banks with the stride bank predictor) and report
 * how each predictor holds up per family. These workloads are built to
 * strain specific predictors — spoiler4k floods the CHT with
 * 4K-aliasing store/load fans, flipper phase-inverts collision and
 * hit/miss behaviour, gcmark drags a pointer-chase through a
 * cache-hostile footprint — so the per-family accuracy triple is the
 * robustness profile the JSON "families" block exports.
 */
int
runFamilies(MachineConfig cfg, std::uint64_t len,
            const std::string &json_path)
{
    cfg.scheme = OrderingScheme::Inclusive;
    cfg.hmp = HmpKind::Chooser;
    cfg.bankMode = BankMode::Sliced;
    cfg.bankPred = BankPredKind::Addr;
    cfg.validateOrThrow();

    const auto ratio = [](std::uint64_t n, std::uint64_t d) {
        return d ? static_cast<double>(n) / static_cast<double>(d)
                 : 0.0;
    };

    TextTable t({"family", "cycles", "IPC", "CHT acc", "HMP acc",
                 "bank acc"});
    json::Value fam = json::Value::object();
    for (const std::string &name :
         TraceLibrary::names(TraceGroup::Adversarial)) {
        const auto trace =
            TraceLibrary::make(TraceLibrary::byName(name, len));
        OooCore core(cfg);
        const SimResult r = core.run(*trace);
        const std::uint64_t cls = r.classifiedLoads();
        const std::uint64_t hm = r.ahPh + r.ahPm + r.amPh + r.amPm;
        const double cht_acc = ratio(r.ancPnc + r.acPc, cls);
        const double hmp_acc = ratio(r.ahPh + r.amPm, hm);
        const double bank_acc =
            r.loads ? 1.0 - ratio(r.bankMispredicts, r.loads) : 0.0;
        t.startRow();
        t.cell(name);
        t.cell(strprintf(
            "%llu", static_cast<unsigned long long>(r.cycles)));
        t.cell(r.ipc(), 2);
        t.cell(cht_acc, 4);
        t.cell(hmp_acc, 4);
        t.cell(bank_acc, 4);
        json::Value f = json::Value::object();
        f.set("cht_accuracy", cht_acc);
        f.set("hmp_accuracy", hmp_acc);
        f.set("bank_accuracy", bank_acc);
        f.set("result", r.toJson());
        fam.set(name, std::move(f));
    }
    t.print(json_path == "-" ? std::cerr : std::cout);
    if (!json_path.empty()) {
        json::Value doc = json::Value::object();
        doc.set("families", std::move(fam));
        emitJson(json_path, doc);
    }
    return kExitOk;
}

/**
 * --throughput: measure host throughput (simulated uops per wall
 * second) of the cycle kernel with the idle-cycle skip-ahead off and
 * on, over a fixed set of deterministic workload families chosen to
 * span the density spectrum (docs/PERFORMANCE.md). Dense families
 * keep every cycle busy (skip-ahead can only win modestly); the
 * sparse families inflate memory latency under a perfect hit-miss
 * predictor, so consumers sleep until data arrives and the machine
 * freezes for thousands of cycles at a time — the regime the
 * skip-ahead collapses. Every family is run both ways and the full
 * result state is compared byte-for-byte: a mismatch is a simulator
 * bug and fails the run (exit 1). A --champsim trace, when given,
 * rides along as an extra family so the golden fixture is covered.
 * Wall-clock numbers are measured, not simulated: the simulated
 * outcomes in the block are deterministic, the uops/sec are not.
 */
int
runThroughput(std::uint64_t len, const std::string &json_path,
              const std::string &champsim_file,
              ChampSimReadOptions cs_opts)
{
    struct Family {
        std::string label;
        std::string trace;   // empty: use the ChampSim file
        bool sparse = false; // inflate memLatency, perfect HMP
    };
    std::vector<Family> fams = {
        {"dense/wd", "wd", false},
        {"dense/gcc", "gcc", false},
        {"adversarial/flipper", "flipper", false},
        {"adversarial/spoiler4k", "spoiler4k", false},
        {"sparse/wd", "wd", true},
        {"sparse/gcmark", "gcmark", true},
    };
    if (!champsim_file.empty())
        fams.push_back({"champsim/golden", "", false});

    const bool entry_skip = cycleSkipAhead();
    TextTable t({"family", "uops", "cycles", "stepped uops/s",
                 "skip uops/s", "speedup"});
    json::Value rows = json::Value::array();
    double max_speedup = 0.0;
    int rc = kExitOk;
    for (const Family &f : fams) {
        MachineConfig cfg;
        cfg.cht.trackDistance = true;
        if (f.sparse) {
            cfg.mem.memLatency = 2000;
            cfg.hmp = HmpKind::Perfect;
        }
        cfg.validateOrThrow();

        const auto load = [&]() -> std::unique_ptr<VecTrace> {
            if (f.trace.empty()) {
                cs_opts.maxInstructions = len;
                return readChampSimFile(champsim_file, cs_opts);
            }
            return TraceLibrary::make(
                TraceLibrary::byName(f.trace, len));
        };

        // Measure one timed run per mode; stepped first so its state
        // is the reference the skip-ahead run must reproduce.
        SimResult results[2];
        std::string states[2];
        double ups[2] = {0.0, 0.0};
        for (int mode = 0; mode < 2; ++mode) {
            const auto trace = load();
            setCycleSkipAhead(mode == 1);
            OooCore core(cfg);
            const auto t0 = std::chrono::steady_clock::now();
            results[mode] = core.run(*trace);
            const auto t1 = std::chrono::steady_clock::now();
            const double secs =
                std::chrono::duration<double>(t1 - t0).count();
            states[mode] = results[mode].saveState().dump();
            ups[mode] = secs > 0.0
                            ? static_cast<double>(results[mode].uops) /
                                  secs
                            : 0.0;
        }
        setCycleSkipAhead(entry_skip);
        const bool identical = states[0] == states[1];
        if (!identical) {
            std::fprintf(stderr,
                         "throughput: family %s: skip-ahead result "
                         "DIVERGED from the stepped run — this is a "
                         "simulator bug\n",
                         f.label.c_str());
            rc = kExitRuntime;
        }
        const double speedup = ups[0] > 0.0 ? ups[1] / ups[0] : 0.0;
        max_speedup = std::max(max_speedup, speedup);

        t.startRow();
        t.cell(f.label);
        t.cell(strprintf("%llu", static_cast<unsigned long long>(
                                     results[0].uops)));
        t.cell(strprintf("%llu", static_cast<unsigned long long>(
                                     results[0].cycles)));
        t.cell(strprintf("%.0f", ups[0]));
        t.cell(strprintf("%.0f", ups[1]));
        t.cell(speedup, 2);

        json::Value row = json::Value::object();
        row.set("family", f.label);
        row.set("uops", results[0].uops);
        row.set("cycles", results[0].cycles);
        row.set("stepped_uops_per_sec", ups[0]);
        row.set("skip_uops_per_sec", ups[1]);
        row.set("speedup", speedup);
        row.set("identical",
                static_cast<std::uint64_t>(identical ? 1 : 0));
        rows.push(std::move(row));
    }
    t.print(json_path == "-" ? std::cerr : std::cout);
    if (!json_path.empty()) {
        json::Value tp = json::Value::object();
        tp.set("len", len);
        tp.set("families", std::move(rows));
        tp.set("max_speedup", max_speedup);
        json::Value doc = json::Value::object();
        doc.set("throughput", std::move(tp));
        emitJson(json_path, doc);
    }
    return rc;
}

/** Connect to an lrs_simd service: a '/' marks a Unix socket path,
 *  anything else is host:port. Throws IoError (exit code 4). */
int
connectToService(const std::string &addr)
{
    if (addr.find('/') != std::string::npos) {
        sockaddr_un sa{};
        sa.sun_family = AF_UNIX;
        if (addr.size() >= sizeof(sa.sun_path)) {
            throw IoError(makeDiag(DiagCode::IoOpenFailed, "lrs_sim",
                                   "submit",
                                   "socket path too long: " + addr));
        }
        std::strncpy(sa.sun_path, addr.c_str(),
                     sizeof(sa.sun_path) - 1);
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0 ||
            ::connect(fd, reinterpret_cast<sockaddr *>(&sa),
                      sizeof(sa)) != 0) {
            if (fd >= 0)
                ::close(fd);
            throw IoError(makeDiag(
                DiagCode::IoOpenFailed, "lrs_sim", "submit",
                "cannot connect to " + addr + " (" +
                    std::strerror(errno) + ")"));
        }
        return fd;
    }
    const std::size_t colon = addr.rfind(':');
    if (colon == std::string::npos || colon + 1 == addr.size())
        throwConfig("lrs_sim", "submit",
                    "ADDR must be a socket path (contains '/') or "
                    "host:port, got " +
                        addr);
    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo *res = nullptr;
    const int gai =
        ::getaddrinfo(addr.substr(0, colon).c_str(),
                      addr.substr(colon + 1).c_str(), &hints, &res);
    if (gai != 0) {
        throw IoError(makeDiag(DiagCode::IoOpenFailed, "lrs_sim",
                               "submit",
                               "cannot resolve " + addr + " (" +
                                   ::gai_strerror(gai) + ")"));
    }
    int fd = -1;
    for (addrinfo *ai = res; ai; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype,
                      ai->ai_protocol);
        if (fd < 0)
            continue;
        if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0)
            break;
        ::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(res);
    if (fd < 0) {
        throw IoError(makeDiag(DiagCode::IoOpenFailed, "lrs_sim",
                               "submit",
                               "cannot connect to " + addr + " (" +
                                   std::strerror(errno) + ")"));
    }
    return fd;
}

/**
 * Client mode: submit a grid to (or attach to a submission of) an
 * lrs_simd service and relay its result stream. Received ack/cell/
 * done lines are echoed to stdout **verbatim** — the byte-identity
 * contract (docs/SERVICE.md) is about these raw bytes, so the client
 * must not re-serialize them.
 */
int
runClient(const std::string &addr, const std::string &batch_path,
          bool attach_set, std::uint64_t attach_id)
{
    std::string request;
    if (attach_set) {
        request = service::attachLine(attach_id);
    } else {
        std::ifstream is(batch_path, std::ios::binary);
        if (!is) {
            throw IoError(makeDiag(DiagCode::IoOpenFailed, "lrs_sim",
                                   "batch",
                                   "cannot open " + batch_path));
        }
        std::ostringstream text;
        text << is.rdbuf();
        request = service::submitLine(text.str());
    }

    const int fd = connectToService(addr);
    if (!writeFully(fd, request)) {
        const int err = errno;
        ::close(fd);
        throw IoError(makeDiag(DiagCode::IoWriteFailed, "lrs_sim",
                               "submit",
                               std::string("send failed (") +
                                   std::strerror(err) + ")"));
    }

    // Bound the readline buffer: a result record is a single compact
    // JSON line, far under this cap. A peer (or a mis-pointed
    // connection to something that is not lrs_simd) streaming an
    // endless newline-free byte flood must produce a classified
    // protocol error, not an unbounded allocation.
    constexpr std::size_t kMaxLineBytes = 16u << 20;
    std::string buf;
    char tmp[65536];
    while (true) {
        const std::size_t pos = buf.find('\n');
        if (pos == std::string::npos) {
            if (buf.size() > kMaxLineBytes) {
                ::close(fd);
                throw IoError(makeDiag(
                    DiagCode::ProtocolError, "lrs_sim", "submit",
                    "service sent " + std::to_string(buf.size()) +
                        " bytes without a newline (line cap " +
                        std::to_string(kMaxLineBytes) +
                        "); is this really an lrs_simd endpoint?"));
            }
            const ssize_t n = ::read(fd, tmp, sizeof(tmp));
            if (n < 0 && errno == EINTR)
                continue;
            if (n <= 0) {
                ::close(fd);
                throw IoError(makeDiag(
                    DiagCode::IoWriteFailed, "lrs_sim", "submit",
                    "connection closed before the \"done\" record "
                    "(is the service draining?)"));
            }
            buf.append(tmp, static_cast<std::size_t>(n));
            continue;
        }
        const std::string line = buf.substr(0, pos);
        buf.erase(0, pos + 1);
        json::Value rec;
        try {
            rec = json::Value::parse(line);
        } catch (const json::ParseError &) {
            ::close(fd);
            throw IoError(makeDiag(DiagCode::IoWriteFailed, "lrs_sim",
                                   "submit",
                                   "service sent an unparsable "
                                   "line: " +
                                       line));
        }
        const std::string type =
            rec.isObject() && rec.find("type")
                ? rec.at("type").asString()
                : "";
        if (type == "error") {
            std::fprintf(stderr, "service error: %s\n", line.c_str());
            ::close(fd);
            return kExitRuntime;
        }
        std::fputs(line.c_str(), stdout);
        std::fputc('\n', stdout);
        if (type == "done") {
            ::close(fd);
            const std::uint64_t bad = rec.at("failed").asU64() +
                                      rec.at("timeout").asU64() +
                                      rec.at("crashed").asU64();
            return bad ? kExitRuntime : kExitOk;
        }
    }
}

/**
 * Push the trace through the fault injector at the serialized-bytes
 * level (header protected) and read it back in recovery mode — the
 * end-to-end graceful-degradation path.
 */
std::unique_ptr<VecTrace>
injectTraceFaults(const VecTrace &trace, FaultInjector &fi,
                  const TraceReadOptions &opts, TraceReadStats &st)
{
    std::stringstream ss;
    writeTrace(ss, trace);
    std::string bytes = ss.str();
    const std::size_t header =
        8 + 4 + trace.name().size() + 8; // magic, len, name, count
    fi.corruptBuffer(reinterpret_cast<std::uint8_t *>(bytes.data()),
                     bytes.size(), header, kTraceRecordBytes);
    std::stringstream back(bytes);
    TraceReadOptions o = opts;
    o.recover = true;
    return readTrace(back, o, &st);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string trace_name = "wd";
    std::string trace_file;
    std::string champsim_file;
    bool families = false;
    bool throughput = false;
    ChampSimReadOptions cs_opts;
    std::string dump_path;
    std::string json_path;
    std::string trace_events_path;
    std::uint64_t trace_buf = PipelineTracer::kDefaultCapacity;
    std::uint64_t len = 200000;
    unsigned jobs_flag = 0;
    std::string batch_path;
    std::string submit_addr;
    bool attach_set = false;
    std::uint64_t attach_id = 0;
    SweepOptions sweep_opts;
    bool compare = false;
    bool profile = false;
    std::string flight_dir;
    std::string check_journal_path;
    std::string snapshot_path;
    std::string from_snapshot;
    std::uint64_t snapshot_after = 0;
    bool snapshot_after_set = false;
    bool validate_snapshot = false;
    bool inject_trace_faults = false;
    TraceReadOptions read_opts;
    FaultConfig fault_cfg = FaultConfig::fromEnv();

    MachineConfig cfg;
    cfg.cht.trackDistance = true;
    if (const char *v = std::getenv("LRS_AUDIT");
        v && *v && std::string(v) != "0") {
        cfg.auditInterval = 8192;
    }

    {
        // SIGINT/SIGTERM request a cooperative stop: running cells
        // unwind, the journal stays consistent, and we exit with the
        // distinct "interrupted" code. SA_RESTART keeps the blocking
        // file I/O paths oblivious; the cycle loop polls the flag.
        struct sigaction sa;
        std::memset(&sa, 0, sizeof(sa));
        sa.sa_handler = &lrsOnSweepSignal;
        sa.sa_flags = SA_RESTART;
        ::sigemptyset(&sa.sa_mask);
        ::sigaction(SIGINT, &sa, nullptr);
        ::sigaction(SIGTERM, &sa, nullptr);
    }

    try {
        for (int i = 1; i < argc; ++i) {
            const std::string a = argv[i];
            auto next = [&]() -> std::string {
                if (i + 1 >= argc)
                    usage(stderr, kExitUsage, argv[0]);
                return argv[++i];
            };
            if (a == "--trace") trace_name = next();
            else if (a == "--trace-file") trace_file = next();
            else if (a == "--champsim") champsim_file = next();
            else if (a == "--families") families = true;
            else if (a == "--max-pages")
                cs_opts.maxPages = std::stoull(next());
            else if (a == "--max-file-bytes")
                cs_opts.maxFileBytes = std::stoull(next());
            else if (a == "--mob-partial-bits")
                cfg.mobPartialBits =
                    static_cast<unsigned>(std::stoul(next()));
            else if (a == "--len") len = std::stoull(next());
            else if (a == "--scheme") cfg.scheme = parseOrderingScheme(next());
            else if (a == "--hmp") cfg.hmp = parseHmpKind(next());
            else if (a == "--bank-mode")
                cfg.bankMode = parseBankMode(next());
            else if (a == "--bank-pred")
                cfg.bankPred = parseBankPredKind(next());
            else if (a == "--banks")
                cfg.numBanks = static_cast<unsigned>(std::stoul(next()));
            else if (a == "--window") cfg.schedWindow = std::stoi(next());
            else if (a == "--int") cfg.intUnits = std::stoi(next());
            else if (a == "--mem") cfg.memUnits = std::stoi(next());
            else if (a == "--cht") cfg.cht.kind = parseChtKind(next());
            else if (a == "--cht-entries")
                cfg.cht.entries = std::stoull(next());
            else if (a == "--config")
                cfg = machineConfigFromFile(next(), cfg);
            else if (a == "--dump-config") {
                std::cout << machineConfigToIni(cfg);
                return kExitOk;
            }
            else if (a == "--compare-schemes") compare = true;
            else if (a == "--batch") batch_path = next();
            else if (a == "--submit") submit_addr = next();
            else if (a == "--attach") {
                attach_set = true;
                attach_id = std::stoull(next());
            }
            else if (a == "--jobs")
                jobs_flag = static_cast<unsigned>(std::stoul(next()));
            else if (a == "--journal")
                sweep_opts.journalPath = next();
            else if (a == "--resume") {
                // The journal operand is optional so bare --resume
                // composes with an explicit --journal PATH. The old
                // unconditional next() consumed whatever followed —
                // "--resume --progress=3" silently made
                // "--progress=3" the journal path and re-ran the
                // whole grid as fresh work.
                sweep_opts.resume = true;
                if (i + 1 < argc && argv[i + 1][0] != '-')
                    sweep_opts.journalPath = argv[++i];
            }
            else if (a == "--retries")
                sweep_opts.retries =
                    static_cast<unsigned>(std::stoul(next()));
            else if (a == "--isolate") sweep_opts.isolate = true;
            else if (a == "--cell-timeout-ms")
                sweep_opts.cellTimeoutMs = std::stoull(next());
            else if (a == "--histograms")
                cfg.collectHistograms = true;
            else if (a == "--no-skip-ahead")
                setCycleSkipAhead(false);
            else if (a == "--throughput") throughput = true;
            else if (a == "--profile") profile = true;
            else if (a == "--flight-recorder") flight_dir = next();
            else if (a == "--progress") sweep_opts.progressFd = 2;
            else if (a.rfind("--progress=", 0) == 0)
                sweep_opts.progressFd = std::stoi(a.substr(11));
            else if (a == "--check-journal")
                check_journal_path = next();
            else if (a == "--snapshot") snapshot_path = next();
            else if (a == "--snapshot-after") {
                snapshot_after = std::stoull(next());
                snapshot_after_set = true;
            }
            else if (a == "--from-snapshot") from_snapshot = next();
            else if (a == "--validate-snapshot")
                validate_snapshot = true;
            else if (a == "--max-cycles")
                cfg.maxCycles = std::stoull(next());
            else if (a == "--dump-trace") dump_path = next();
            else if (a == "--json") json_path = next();
            else if (a == "--stats-interval")
                cfg.statsInterval = std::stoull(next());
            else if (a == "--trace-events")
                trace_events_path = next();
            else if (a == "--trace-buf")
                trace_buf = std::stoull(next());
            else if (a == "--audit") {
                if (cfg.auditInterval == 0)
                    cfg.auditInterval = 8192;
            }
            else if (a == "--audit-interval")
                cfg.auditInterval = std::stoull(next());
            else if (a == "--recover") read_opts.recover = true;
            else if (a == "--bad-record-budget")
                read_opts.badRecordBudget = std::stoull(next());
            else if (a == "--inject-trace-faults")
                inject_trace_faults = true;
            else if (a == "--fault-seed")
                fault_cfg.seed = std::stoull(next());
            else if (a == "--fault-trace-rate")
                fault_cfg.traceRate = std::stod(next());
            else if (a == "--fault-bit-rate")
                fault_cfg.bitRate = std::stod(next());
            else if (a == "--fault-lat-rate")
                fault_cfg.latRate = std::stod(next());
            else if (a == "--help" || a == "-h")
                usage(stdout, kExitOk, argv[0]);
            else {
                std::fprintf(stderr, "unknown option: %s\n", a.c_str());
                usage(stderr, kExitUsage, argv[0]);
            }
        }
        if (!check_journal_path.empty()) {
            // Offline CRC validation of any LRSJ1-framed file: a
            // checkpoint journal or a flight-recorder dump.
            JournalReadStats jst;
            const std::vector<json::Value> recs =
                readJournal(check_journal_path, &jst);
            // Wrong-format diagnosis before damage accounting: a file
            // with zero valid records that does not even open with
            // the "LRSJ1 " magic was never a journal — and the most
            // common mix-up is pointing this at a raw ChampSim trace.
            // (A real journal whose every record is damaged still
            // starts with the magic and gets the damage report.)
            if (recs.empty() && jst.badLines) {
                char magic[6] = {};
                std::ifstream head(check_journal_path,
                                   std::ios::binary);
                head.read(magic, sizeof(magic));
                if (head.gcount() < 6 ||
                    std::memcmp(magic, "LRSJ1 ", 6) != 0) {
                    const bool champsim =
                        looksLikeChampSimFile(check_journal_path);
                    std::fprintf(
                        stderr, "%s: not an LRSJ1 file%s\n",
                        check_journal_path.c_str(),
                        champsim
                            ? " (looks like a raw ChampSim trace; "
                              "run it with --champsim instead)"
                            : "");
                    return kExitRuntime;
                }
            }
            // A machine snapshot announces itself in its first
            // record; those get the full strict structural check on
            // top of line-level CRC validation.
            if (!jst.badLines && !recs.empty() &&
                recs.front().isObject()) {
                const json::Value *kind = recs.front().find("kind");
                if (kind && kind->isString() &&
                    kind->asString() == "lrs-snapshot") {
                    try {
                        const SnapshotImage img =
                            readSnapshot(check_journal_path);
                        std::printf(
                            "%s: valid snapshot (format v%llu, trace "
                            "%s, cycle %llu, %zu section(s))\n",
                            check_journal_path.c_str(),
                            static_cast<unsigned long long>(
                                img.version),
                            img.traceName.c_str(),
                            static_cast<unsigned long long>(
                                img.cycle),
                            img.state.members().size());
                        return kExitOk;
                    } catch (const ConfigError &e) {
                        std::fprintf(stderr,
                                     "%s: invalid snapshot:\n%s\n",
                                     check_journal_path.c_str(),
                                     e.what());
                        return kExitRuntime;
                    }
                }
            }
            std::printf("%s: %zu valid record(s)\n",
                        check_journal_path.c_str(), recs.size());
            if (jst.badLines) {
                std::fprintf(
                    stderr,
                    "%s: %llu damaged line(s), %llu byte(s) "
                    "dropped%s; first damaged record: line %llu, "
                    "byte offset %llu\n",
                    check_journal_path.c_str(),
                    static_cast<unsigned long long>(jst.badLines),
                    static_cast<unsigned long long>(jst.droppedBytes),
                    jst.truncatedTail ? " (torn tail)" : "",
                    static_cast<unsigned long long>(jst.firstBadLine),
                    static_cast<unsigned long long>(
                        jst.firstBadOffset));
                return kExitRuntime;
            }
            return kExitOk;
        }
        if (!submit_addr.empty()) {
            if (batch_path.empty() && !attach_set) {
                std::fprintf(stderr,
                             "--submit needs --batch GRID or "
                             "--attach N\n");
                usage(stderr, kExitUsage, argv[0]);
            }
            return runClient(submit_addr, batch_path, attach_set,
                             attach_id);
        }
        if (attach_set) {
            std::fprintf(stderr, "--attach needs --submit ADDR\n");
            usage(stderr, kExitUsage, argv[0]);
        }
        if (profile)
            prof::setEnabled(true);
        // --jobs also sizes the lazily-created shared pool behind
        // runAllSchemes (used by --compare-schemes).
        if (jobs_flag)
            ::setenv("LRS_JOBS", std::to_string(jobs_flag).c_str(), 1);
        if (!snapshot_path.empty() && !snapshot_after_set) {
            std::fprintf(stderr,
                         "--snapshot needs --snapshot-after N\n");
            usage(stderr, kExitUsage, argv[0]);
        }
        if (sweep_opts.resume && sweep_opts.journalPath.empty()) {
            std::fprintf(stderr, "--resume needs a journal path "
                                 "(operand or --journal PATH)\n");
            usage(stderr, kExitUsage, argv[0]);
        }
        if (!batch_path.empty())
            return runBatch(batch_path, jobs_flag, json_path,
                            sweep_opts, cfg.maxCycles,
                            cfg.collectHistograms, profile,
                            flight_dir, validate_snapshot);

        if (families)
            return runFamilies(cfg, len, json_path);

        if (throughput)
            return runThroughput(len, json_path, champsim_file,
                                 cs_opts);

        if (inject_trace_faults && fault_cfg.traceRate <= 0.0)
            fault_cfg.traceRate = 0.01;

        FaultInjector faults(fault_cfg);
        TraceReadStats read_stats;

        std::unique_ptr<VecTrace> trace;
        ChampSimTraceInfo cs_info;
        if (!champsim_file.empty()) {
            cs_opts.read = read_opts;
            cs_opts.maxInstructions = len;
            trace = readChampSimFile(champsim_file, cs_opts,
                                     &read_stats, &cs_info);
            std::fprintf(
                stderr,
                "champsim: %llu instruction(s) -> %zu uops, %llu "
                "byte(s), %llu page(s), crc32 %08x\n",
                static_cast<unsigned long long>(cs_info.instructions),
                trace->size(),
                static_cast<unsigned long long>(cs_info.bytes),
                static_cast<unsigned long long>(cs_info.pages),
                cs_info.crc);
        } else if (!trace_file.empty())
            trace = readTraceFile(trace_file, read_opts, &read_stats);
        else
            trace = TraceLibrary::make(
                TraceLibrary::byName(trace_name, len));

        if (inject_trace_faults) {
            trace = injectTraceFaults(*trace, faults, read_opts,
                                      read_stats);
            std::fprintf(stderr,
                         "fault injection: corrupted %llu records, "
                         "reader skipped %llu (seed %llu)\n",
                         static_cast<unsigned long long>(
                             faults.traceFaults()),
                         static_cast<unsigned long long>(
                             read_stats.skippedRecords),
                         static_cast<unsigned long long>(
                             fault_cfg.seed));
        }

        if (!dump_path.empty()) {
            writeTraceFile(dump_path, *trace);
            std::printf("wrote %zu uops to %s\n", trace->size(),
                        dump_path.c_str());
            return kExitOk;
        }

        if (compare) {
            const auto wall0 = std::chrono::steady_clock::now();
            const auto results = runAllSchemes(*trace, cfg);
            const double wall =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - wall0)
                    .count();
            std::uint64_t total_uops = 0;
            for (const auto &r : results)
                total_uops += r.uops;
            if (profile)
                std::fputs(
                    prof::reportText(total_uops, wall).c_str(),
                    stderr);
            const SimResult &base = results.front();
            TextTable t({"scheme", "cycles", "IPC", "speedup"});
            for (std::size_t i = 0; i < results.size(); ++i) {
                t.startRow();
                t.cell(orderingSchemeName(allSchemes()[i]));
                t.cell(strprintf("%llu", static_cast<unsigned long long>(
                                             results[i].cycles)));
                t.cell(results[i].ipc(), 2);
                t.cell(results[i].speedupOver(base), 3);
            }
            t.print(std::cout);
            if (!json_path.empty()) {
                json::Value doc = json::Value::object();
                json::Value schemes = json::Value::array();
                for (const auto &r : results)
                    schemes.push(r.toJson());
                doc.set("schemes", std::move(schemes));
                if (profile)
                    doc.set("profile",
                            prof::reportJson(total_uops, wall));
                emitJson(json_path, doc);
            }
            return kExitOk;
        }

        OooCore core(cfg);
        // The reader/injector accounting joins the core's registry so
        // one JSON document tells the whole robustness story
        // ("trace.*", "fault.*", "audit.*").
        read_stats.registerStats(core.stats().group("trace"));
        faults.registerStats(core.stats().group("fault"));
        if (faults.enabled())
            core.attachFaultInjector(&faults);
        std::unique_ptr<PipelineTracer> tracer;
        if (!trace_events_path.empty()) {
            tracer = std::make_unique<PipelineTracer>(trace_buf);
            core.attachTracer(tracer.get());
        }
        const auto wall0 = std::chrono::steady_clock::now();
        SimResult r;
        if (!from_snapshot.empty()) {
            // Resume a checkpointed run: restore, then simulate only
            // the remainder. Statistics come out bit-identical to the
            // uninterrupted run under the same config.
            loadSnapshotInto(from_snapshot, core, *trace);
            core.advanceTo(*trace);
            r = core.finishRun();
        } else if (!snapshot_path.empty()) {
            core.beginRun(*trace);
            core.advanceTo(*trace, snapshot_after);
            writeSnapshot(snapshot_path, core, *trace,
                          snapshot_after);
            std::fprintf(stderr, "snapshot: %s at cycle %llu\n",
                         snapshot_path.c_str(),
                         static_cast<unsigned long long>(core.now()));
            core.advanceTo(*trace);
            r = core.finishRun();
        } else {
            r = core.run(*trace);
        }
        const double wall = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() -
                                wall0)
                                .count();
        if (validate_snapshot) {
            // Re-run the simulation twice on the same trace — once
            // uninterrupted, once through a save/restore at
            // --snapshot-after (default: half the run) — each with a
            // fresh fault injector under the same config, and compare
            // the lossless state serializations byte for byte
            // (doubles as IEEE-754 bit patterns).
            const Cycle stop =
                snapshot_after_set ? snapshot_after : r.cycles / 2;
            const std::string spath =
                snapshot_path.empty()
                    ? std::filesystem::temp_directory_path()
                              .string() +
                          "/lrs_validate_" +
                          std::to_string(::getpid()) + ".snap"
                    : snapshot_path;
            const auto rerun = [&](bool through_snapshot) {
                OooCore c(cfg);
                FaultInjector fi(fault_cfg);
                if (fi.enabled())
                    c.attachFaultInjector(&fi);
                if (!through_snapshot)
                    return c.run(*trace);
                {
                    OooCore warm(cfg);
                    FaultInjector warm_fi(fault_cfg);
                    if (warm_fi.enabled())
                        warm.attachFaultInjector(&warm_fi);
                    warm.beginRun(*trace);
                    warm.advanceTo(*trace, stop);
                    writeSnapshot(spath, warm, *trace, stop);
                }
                loadSnapshotInto(spath, c, *trace);
                c.advanceTo(*trace);
                return c.finishRun();
            };
            const SimResult full = rerun(false);
            const SimResult rr = rerun(true);
            if (snapshot_path.empty())
                std::remove(spath.c_str());
            if (rr.saveState().dump(0) != full.saveState().dump(0)) {
                std::fprintf(stderr,
                             "validate-snapshot: FAILED — round trip "
                             "at cycle %llu diverged from the full "
                             "run\n",
                             static_cast<unsigned long long>(stop));
                return kExitRuntime;
            }
            std::fprintf(stderr,
                         "validate-snapshot: OK — save/restore at "
                         "cycle %llu is bit-identical\n",
                         static_cast<unsigned long long>(stop));
        }
        printResult(json_path == "-" ? stderr : stdout, r);
        if (profile)
            std::fputs(prof::reportText(r.uops, wall).c_str(),
                       stderr);
        if (!json_path.empty()) {
            json::Value doc = r.toJson();
            doc.set("registry", core.stats().toJson());
            if (profile)
                doc.set("profile", prof::reportJson(r.uops, wall));
            emitJson(json_path, doc);
        }
        if (tracer)
            tracer->writeChromeTrace(trace_events_path);
        return kExitOk;
    } catch (const ConfigError &e) {
        std::fprintf(stderr, "config error:\n%s\n", e.what());
        return kExitConfig;
    } catch (const IoError &e) { // includes TraceError
        std::fprintf(stderr, "I/O error:\n%s\n", e.what());
        return kExitIo;
    } catch (const AuditError &e) {
        std::fprintf(stderr,
                     "AUDIT FAILURE — simulator state is corrupt, "
                     "results are untrustworthy:\n%s\n",
                     e.what());
        return kExitRuntime;
    } catch (const InterruptError &e) {
        std::fprintf(stderr, "interrupted:\n%s\n", e.what());
        return kExitInterrupted;
    } catch (const std::invalid_argument &e) {
        // Flag-value parse errors (std::stoi and friends).
        std::fprintf(stderr, "error: %s\n", e.what());
        return kExitUsage;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return kExitRuntime;
    }
}
