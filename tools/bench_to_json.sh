#!/bin/sh
# Run the figure benches and aggregate their per-bench JSON reports
# into one trajectory file.
#
# Usage: tools/bench_to_json.sh [BUILD_DIR] [OUT_FILE]
#
#   BUILD_DIR  where the bench binaries live (default: build/bench)
#   OUT_FILE   aggregate output (default: BENCH_5.json)
#
# Environment:
#   LRS_TRACE_LEN  uops per trace passed through to the benches
#                  (default here: 40000, kept small so the sweep
#                  finishes in seconds; raise for fidelity)
#   LRS_JOBS       sweep-pool workers per bench (default: hardware
#                  concurrency; see docs/PARALLELISM.md). Output is
#                  bit-identical for any value.
#
# Each bench writes {"bench":..., "trace_len":..., "rows":[...]} to
# $LRS_BENCH_JSON (see bench/bench_util.hh). This script points that
# at a scratch file per bench and then splices the documents into
#
#   {"generated_by": "...", "trace_len": N,
#    "throughput": {...uops/sec baseline...}, "benches": [...]}
#
# The throughput block comes from one lrs_sim --profile run, so the
# trajectory records how fast the simulator itself was at each PR —
# the regression baseline for host-time optimisation work.
#
# The warmup_amortization block times the same sweep grid three ways —
# no checkpoints, warmup_snapshot checkpointing cold, and again
# reusing the checkpoints (docs/ROBUSTNESS.md, "Snapshots") — so the
# trajectory records how much host time the warm-fork protocol saves:
# warmup is paid once per trace instead of once per cell, and zero
# times on reuse.
#
# The families block is the adversarial-workload profile
# (docs/TRACES.md): per-family CHT / hit-miss / bank predictor
# accuracy from `lrs_sim --families`, so the trajectory records how
# the predictors hold up under deliberately hostile inputs, not just
# the paper's favourable ones.
#
# The cycle_throughput block is the `lrs_sim --throughput` microbench
# (docs/PERFORMANCE.md): per-family uops/sec with the idle-cycle
# skip-ahead off and on, each pair verified bit-identical before the
# speedup is reported. tools/check_overhead.sh gates against the
# committed copy of this block so a hot-path regression fails CI.

set -eu

BUILD_DIR=${1:-build/bench}
OUT=${2:-BENCH_5.json}
: "${LRS_TRACE_LEN:=40000}"
export LRS_TRACE_LEN

if [ ! -d "$BUILD_DIR" ]; then
    echo "error: bench build dir '$BUILD_DIR' not found" >&2
    echo "build first: cmake -B build -S . && cmake --build build -j" >&2
    exit 1
fi

TMPDIR_JSON=$(mktemp -d)
trap 'rm -rf "$TMPDIR_JSON"' EXIT

BENCHES="fig04_pipeline_compare fig05_load_classification \
fig06_window_sweep fig07_ordering_speedup fig08_machine_config \
fig09_cht_configs fig10_hmp_stats fig11_hmp_speedup fig12_bank_metric"

ran=0
for b in $BENCHES; do
    exe="$BUILD_DIR/$b"
    if [ ! -x "$exe" ]; then
        echo "skip: $b (no binary at $exe)" >&2
        continue
    fi
    echo "running $b (LRS_TRACE_LEN=$LRS_TRACE_LEN)..." >&2
    LRS_BENCH_JSON="$TMPDIR_JSON/$b.json" "$exe" > /dev/null
    ran=$((ran + 1))
done

if [ "$ran" -eq 0 ]; then
    echo "error: no bench binaries found under $BUILD_DIR" >&2
    exit 1
fi

# Host-throughput baseline: one profiled single run; uops/sec comes
# out of the "profile" JSON block (0 if lrs_sim is not built).
SIM="$BUILD_DIR/../tools/lrs_sim"
UOPS_PER_SEC=0
if [ -x "$SIM" ]; then
    echo "running lrs_sim --profile throughput baseline..." >&2
    UOPS_PER_SEC=$("$SIM" --trace wd --len "$LRS_TRACE_LEN" --profile \
        --json - 2>/dev/null \
        | grep '"uops_per_sec"' | head -n 1 \
        | sed 's/.*: *//; s/[,}].*//')
    [ -n "$UOPS_PER_SEC" ] || UOPS_PER_SEC=0
else
    echo "skip: throughput baseline (no lrs_sim at $SIM)" >&2
fi

# Wall-clock in milliseconds; falls back to whole seconds when date
# lacks GNU %N (the block still shows the ordering, just coarser).
now_ms() {
    t=$(date +%s%N)
    case $t in
        *N*) echo "$(($(date +%s) * 1000))" ;;
        *)   echo "$((t / 1000000))" ;;
    esac
}

# Warmup-amortization timing: one 10-cell grid (2 traces x 5 schemes),
# serial so the comparison is pure host work. The cold snapshot run
# warms each trace once and forks the 5 variants from the checkpoint;
# the reuse run finds the checkpoints already on disk and pays no
# warmup at all.
FULL_MS=0
SNAP_COLD_MS=0
SNAP_REUSE_MS=0
# ~60% of the run in cycles (uops retire at IPC > 1), deep enough
# that the per-cell restore cost is clearly beaten at bench scale.
WARM_CYCLES=$((LRS_TRACE_LEN * 2 / 5))
if [ -x "$SIM" ]; then
    echo "running warmup-amortization timing..." >&2
    grid="$TMPDIR_JSON/warm.ini"
    printf 'traces  = wd, gcc\n' > "$grid"
    printf 'schemes = traditional, opportunistic, exclusive, storesets, perfect\n' >> "$grid"
    printf 'len     = %s\n' "$LRS_TRACE_LEN" >> "$grid"
    t0=$(now_ms)
    "$SIM" --batch "$grid" --jobs 1 > /dev/null 2>&1
    t1=$(now_ms)
    printf 'warmup_snapshot = %s\n' "$WARM_CYCLES" >> "$grid"
    "$SIM" --batch "$grid" --jobs 1 > /dev/null 2>&1
    t2=$(now_ms)
    "$SIM" --batch "$grid" --jobs 1 > /dev/null 2>&1
    t3=$(now_ms)
    FULL_MS=$((t1 - t0))
    SNAP_COLD_MS=$((t2 - t1))
    SNAP_REUSE_MS=$((t3 - t2))
else
    echo "skip: warmup-amortization timing (no lrs_sim at $SIM)" >&2
fi

# Adversarial-family predictor accuracies (docs/TRACES.md): lift the
# "families" object out of the --families JSON document. The block is
# emitted at indent 2, so it ends at the first "  }"-prefixed line.
FAMILIES_JSON="$TMPDIR_JSON/families.extract"
printf '{}' > "$FAMILIES_JSON"
if [ -x "$SIM" ]; then
    echo "running lrs_sim --families adversarial profile..." >&2
    "$SIM" --families --len "$LRS_TRACE_LEN" \
        --json "$TMPDIR_JSON/families.json" > /dev/null 2>&1
    awk '/^  "families": \{/ {grab=1; print "{"; next}
         grab && /^  \}/ {print "}"; exit}
         grab {print}' \
        "$TMPDIR_JSON/families.json" > "$FAMILIES_JSON"
    [ -s "$FAMILIES_JSON" ] || printf '{}' > "$FAMILIES_JSON"
else
    echo "skip: adversarial families (no lrs_sim at $SIM)" >&2
fi

# Cycle-kernel throughput microbench: per-family uops/sec stepped vs
# skip-ahead, bit-identity checked inside the tool. Lift the
# "throughput" object (emitted at indent 2) out of the JSON document;
# the golden ChampSim fixture rides along when present.
CYCLE_TP_JSON="$TMPDIR_JSON/cycle_tp.extract"
printf '{}' > "$CYCLE_TP_JSON"
if [ -x "$SIM" ]; then
    echo "running lrs_sim --throughput cycle-kernel microbench..." >&2
    GOLDEN="$(dirname "$0")/../tests/data/golden.champsim"
    set -- --throughput --len "$LRS_TRACE_LEN" \
        --json "$TMPDIR_JSON/cycle_tp.json"
    [ -f "$GOLDEN" ] && set -- "$@" --champsim "$GOLDEN"
    "$SIM" "$@" > /dev/null 2>&1
    awk '/^  "throughput": \{/ {grab=1; print "{"; next}
         grab && /^  \}/ {print "}"; exit}
         grab {print}' \
        "$TMPDIR_JSON/cycle_tp.json" > "$CYCLE_TP_JSON"
    [ -s "$CYCLE_TP_JSON" ] || printf '{}' > "$CYCLE_TP_JSON"
else
    echo "skip: cycle throughput (no lrs_sim at $SIM)" >&2
fi

{
    printf '{\n'
    printf '  "generated_by": "tools/bench_to_json.sh",\n'
    printf '  "trace_len": %s,\n' "$LRS_TRACE_LEN"
    printf '  "throughput": {\n'
    printf '    "trace": "wd",\n'
    printf '    "len": %s,\n' "$LRS_TRACE_LEN"
    printf '    "uops_per_sec": %s\n' "$UOPS_PER_SEC"
    printf '  },\n'
    printf '  "warmup_amortization": {\n'
    printf '    "traces": 2,\n'
    printf '    "schemes": 5,\n'
    printf '    "warmup_cycles": %s,\n' "$WARM_CYCLES"
    printf '    "full_sweep_ms": %s,\n' "$FULL_MS"
    printf '    "snapshot_sweep_cold_ms": %s,\n' "$SNAP_COLD_MS"
    printf '    "snapshot_sweep_reuse_ms": %s\n' "$SNAP_REUSE_MS"
    printf '  },\n'
    printf '  "cycle_throughput": '
    sed 's/^/  /; 1s/^  //; $s/$/,/' "$CYCLE_TP_JSON"
    printf '  "families": '
    sed 's/^/  /; 1s/^  //; $s/$/,/' "$FAMILIES_JSON"
    printf '  "benches": [\n'
    first=1
    for b in $BENCHES; do
        f="$TMPDIR_JSON/$b.json"
        [ -f "$f" ] || continue
        [ "$first" -eq 1 ] || printf ',\n'
        first=0
        cat "$f"
    done
    printf '\n  ]\n}\n'
} > "$OUT"

echo "wrote $OUT ($ran benches)" >&2
