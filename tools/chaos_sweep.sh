#!/usr/bin/env sh
# Chaos drill for the sweep supervisor (docs/ROBUSTNESS.md, "Sweep
# supervisor"): run a fault-injected --batch grid, SIGKILL it
# mid-sweep, resume from the checkpoint journal, and assert the final
# table and JSON report are byte-identical to a clean serial run —
# for 1, 2 and 8 workers. A second leg crashes one cell under
# --isolate and checks the sweep contains it (CRASHED row, siblings
# complete) and that a resume converges to the same clean reference.
#
# Snapshot legs (docs/ROBUSTNESS.md, "Snapshots", fork-free): a
# warmup_snapshot grid must produce byte-identical reports for 1/2/8
# workers while reusing the first run's checkpoints untouched; a
# SIGKILL during the warmup-checkpointing phase must leave every
# *.snap file valid-or-absent (atomic tmp+fsync+rename) and a resume
# must converge to the clean reference, regenerating what the crash
# destroyed.
#
# Daemon legs (docs/SERVICE.md, fork-free — they run under TSan too):
# submit the same grid to lrs_simd over a Unix socket, SIGTERM-drain
# it (smoke), then for 1/2/8 workers SIGKILL the daemon mid-sweep,
# restart it on the same state directory and assert the re-delivered
# client stream is byte-identical to the uninterrupted daemon's.
#
# Usage: tools/chaos_sweep.sh [--no-isolate] [build-dir]
#   --no-isolate  skip the fork-based leg (TSan does not support
#                 fork() in instrumented multithreaded processes)
#   build-dir     defaults to ./build
#
# Knobs (all optional):
#   LRS_FAULT_SEED / LRS_FAULT_LAT_RATE  fault injection in the cells
#                                        (defaults 42 / 0.01)
#   LRS_CHAOS_CRASH_SIG                  signal the sacrificial cell
#                                        raises (default SIGSEGV; the
#                                        ASan wrapper passes 9)
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)

isolate=1
if [ $# -gt 0 ] && [ "$1" = "--no-isolate" ]; then
    isolate=0
    shift
fi
build_dir=${1:-"$repo_root/build"}
sim="$build_dir/tools/lrs_sim"
simd="$build_dir/tools/lrs_simd"
if [ ! -x "$sim" ] || [ ! -x "$simd" ]; then
    echo "chaos_sweep: $sim / $simd not built" \
         "(cmake --build $build_dir)" >&2
    exit 2
fi

work=$(mktemp -d "${TMPDIR:-/tmp}/lrs_chaos.XXXXXX")
trap 'rm -rf "$work"' EXIT INT TERM

# Deterministic fault injection inside every cell: the sweep must
# survive chaos *and* stay reproducible under it.
export LRS_FAULT_SEED="${LRS_FAULT_SEED:-42}"
export LRS_FAULT_LAT_RATE="${LRS_FAULT_LAT_RATE:-0.01}"

cat > "$work/grid.ini" <<EOF
traces  = wd, gcc, swim, tpcc
schemes = traditional, opportunistic, exclusive, perfect
len     = 150000
EOF

fail() {
    echo "chaos_sweep: FAIL: $*" >&2
    exit 1
}

lines() {
    if [ -f "$1" ]; then wc -l < "$1"; else echo 0; fi
}

echo "chaos_sweep: clean serial reference run"
"$sim" --batch "$work/grid.ini" --jobs 1 --json "$work/ref.json" \
    > "$work/ref.txt" 2> "$work/ref.err"

for jobs in 1 2 8; do
    echo "chaos_sweep: SIGKILL mid-sweep + resume (jobs=$jobs)"
    j="$work/j$jobs.jsonl"
    rm -f "$j"
    "$sim" --batch "$work/grid.ini" --jobs "$jobs" --journal "$j" \
        > "$work/killed$jobs.txt" 2>/dev/null &
    pid=$!
    # Let at least two cells checkpoint, then kill -9 mid-flight. If
    # the sweep finishes first the resume is a pure journal replay,
    # which must still be byte-identical.
    tries=0
    while [ "$(lines "$j")" -lt 2 ]; do
        kill -0 "$pid" 2>/dev/null || break
        tries=$((tries + 1))
        [ "$tries" -gt 600 ] && break
        sleep 0.05
    done
    kill -KILL "$pid" 2>/dev/null || true
    wait "$pid" 2>/dev/null || true
    "$sim" --batch "$work/grid.ini" --jobs "$jobs" --resume "$j" \
        --json "$work/res$jobs.json" \
        > "$work/res$jobs.txt" 2> "$work/res$jobs.err"
    cmp -s "$work/ref.txt" "$work/res$jobs.txt" \
        || fail "resumed table differs from clean run (jobs=$jobs)"
    cmp -s "$work/ref.json" "$work/res$jobs.json" \
        || fail "resumed JSON differs from clean run (jobs=$jobs)"
done

if [ "$isolate" = 1 ]; then
    echo "chaos_sweep: crashing one cell under --isolate, then resume"
    j="$work/jc.jsonl"
    rc=0
    LRS_CHAOS_CRASH_CELL=5 "$sim" --batch "$work/grid.ini" --jobs 2 \
        --isolate --journal "$j" \
        --flight-recorder "$work/flight" --json "$work/crash.json" \
        > "$work/crash.txt" 2> "$work/crash.err" || rc=$?
    [ "$rc" -eq 1 ] || fail "crashing sweep exited $rc, expected 1"
    grep -q "CRASHED" "$work/crash.txt" \
        || fail "crashed cell not reported CRASHED"
    ok_rows=$(grep -c " OK " "$work/crash.txt" || true)
    [ "$ok_rows" -eq 15 ] \
        || fail "expected 15 completed siblings, saw $ok_rows"
    # The crashed cell must leave a CRC-valid flight-recorder dump
    # (armed before the chaos signal fires, even against SIGKILL),
    # the failure entry in the batch JSON must reference it, and the
    # 15 completed siblings must have cleaned theirs up.
    fdump="$work/flight/cell_5.flight.jsonl"
    [ -f "$fdump" ] \
        || fail "crashed cell left no flight-recorder dump at $fdump"
    "$sim" --check-journal "$fdump" > /dev/null \
        || fail "flight-recorder dump failed CRC validation"
    grep -q "flight_recorder" "$work/crash.json" \
        || fail "batch JSON failure entry lacks flight_recorder path"
    ndumps=$(ls "$work/flight" | wc -l)
    [ "$ndumps" -eq 1 ] \
        || fail "expected 1 surviving dump, saw $ndumps"
    # Resume without the chaos hook: the crashed cell re-runs and the
    # final report converges to the clean reference, byte for byte.
    "$sim" --batch "$work/grid.ini" --jobs 2 --resume "$j" \
        --json "$work/resc.json" \
        > "$work/resc.txt" 2> "$work/resc.err"
    cmp -s "$work/ref.txt" "$work/resc.txt" \
        || fail "post-crash resumed table differs from clean run"
    cmp -s "$work/ref.json" "$work/resc.json" \
        || fail "post-crash resumed JSON differs from clean run"
fi

# ---------------------------------------------------------------------
# Snapshot legs. Fork-free, so they run in both sanitizer passes.
# ---------------------------------------------------------------------

echo "chaos_sweep: warmup-snapshot sweep byte-identity (jobs=1/2/8)"
cat > "$work/snap.ini" <<EOF
traces          = wd, gcc
schemes         = traditional, exclusive, storesets
len             = 150000
warmup_snapshot = 60000
EOF
snapdir="$work/snap.ini.snapshots"
"$sim" --batch "$work/snap.ini" --jobs 1 --json "$work/sref.json" \
    > "$work/sref.txt" 2> "$work/sref.err"
grep -q "checkpointed at cycle 60000" "$work/sref.err" \
    || fail "warmup phase did not report its checkpoints"
# Fingerprint the checkpoints: later runs must reuse these bytes, not
# rewarm and rewrite them.
cksum "$snapdir"/*.warmup.snap > "$work/snap.cksum"
for jobs in 2 8; do
    "$sim" --batch "$work/snap.ini" --jobs "$jobs" \
        --json "$work/s$jobs.json" \
        > "$work/s$jobs.txt" 2> "$work/s$jobs.err"
    cmp -s "$work/sref.txt" "$work/s$jobs.txt" \
        || fail "snapshot sweep table differs from jobs=1 (jobs=$jobs)"
    cmp -s "$work/sref.json" "$work/s$jobs.json" \
        || fail "snapshot sweep JSON differs from jobs=1 (jobs=$jobs)"
    cksum "$snapdir"/*.warmup.snap > "$work/snap.cksum.$jobs"
    cmp -s "$work/snap.cksum" "$work/snap.cksum.$jobs" \
        || fail "checkpoints were rewritten instead of reused (jobs=$jobs)"
done
"$sim" --batch "$work/snap.ini" --jobs 2 --validate-snapshot \
    > /dev/null 2> /dev/null \
    || fail "--validate-snapshot failed on the snapshot grid"

echo "chaos_sweep: SIGKILL during warmup checkpointing, then resume"
rm -rf "$snapdir"
j="$work/jsnap.jsonl"
rm -f "$j"
"$sim" --batch "$work/snap.ini" --jobs 2 --journal "$j" \
    > /dev/null 2>/dev/null &
pid=$!
# Kill -9 the instant the warmup phase starts materialising files —
# with luck mid-write, leaving a torn *.tmp behind. If the sweep
# outruns us the assertions below still hold on complete state.
tries=0
while [ -z "$(ls -A "$snapdir" 2>/dev/null)" ]; do
    kill -0 "$pid" 2>/dev/null || break
    tries=$((tries + 1))
    [ "$tries" -gt 3000 ] && break
    sleep 0.01
done
kill -KILL "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true
# Atomic-write contract: every *.snap that exists must be a CRC-valid,
# fully loadable snapshot; a torn write may only survive as *.tmp.
for f in "$snapdir"/*.warmup.snap; do
    [ -e "$f" ] || continue
    "$sim" --check-journal "$f" > /dev/null \
        || fail "post-SIGKILL snapshot $f is invalid (torn write?)"
done
# Resume converges to the clean reference byte-for-byte, regenerating
# whatever checkpoints the crash destroyed and reusing survivors. (A
# kill during warmup predates the sweep journal; an empty journal
# resume is simply a full run.)
[ -f "$j" ] || : > "$j"
"$sim" --batch "$work/snap.ini" --jobs 2 --resume "$j" \
    --json "$work/sres.json" > "$work/sres.txt" 2> "$work/sres.err"
cmp -s "$work/sref.txt" "$work/sres.txt" \
    || fail "post-crash snapshot resume table differs from clean run"
cmp -s "$work/sref.json" "$work/sres.json" \
    || fail "post-crash snapshot resume JSON differs from clean run"

# ---------------------------------------------------------------------
# Daemon legs. Fork-free by construction (no --isolate), so they run
# in both the ASan/UBSan and TSan passes of tools/run_sanitized.sh.
# ---------------------------------------------------------------------

# Wait for the daemon's listening socket to appear (bind+listen happen
# back-to-back before start() returns, so -S is a safe readiness probe).
wait_socket() {
    tries=0
    while [ ! -S "$1" ]; do
        tries=$((tries + 1))
        [ "$tries" -gt 600 ] && fail "daemon socket $1 never appeared"
        sleep 0.05
    done
}

echo "chaos_sweep: daemon smoke (submit over a socket, SIGTERM drain)"
dsock="$work/dsmoke.sock"
"$simd" --socket "$dsock" --state "$work/dsmoke" --jobs 2 \
    2> "$work/dsmoke.err" &
dpid=$!
wait_socket "$dsock"
"$sim" --submit "$dsock" --batch "$work/grid.ini" \
    > "$work/dref.jsonl" 2> "$work/dsub.err" \
    || fail "daemon submit failed"
grep -q '"type":"done"' "$work/dref.jsonl" \
    || fail "daemon stream carries no done record"
kill -TERM "$dpid"
wait "$dpid" || fail "daemon drain exited nonzero"
grep -q "drained" "$work/dsmoke.err" \
    || fail "daemon did not report a clean drain"

for jobs in 1 2 8; do
    echo "chaos_sweep: daemon SIGKILL mid-sweep + restart (jobs=$jobs)"
    dstate="$work/d$jobs"
    dsock="$work/d$jobs.sock"
    "$simd" --socket "$dsock" --state "$dstate" --jobs "$jobs" \
        2>/dev/null &
    dpid=$!
    wait_socket "$dsock"
    "$sim" --submit "$dsock" --batch "$work/grid.ini" \
        > /dev/null 2>&1 &
    cpid=$!
    # Let at least two cells reach the cell journal, then kill -9 the
    # daemon. If the sweep finished first the restart serves a pure
    # replay, which must still be byte-identical.
    cj="$dstate/sub_1.cells.jsonl"
    tries=0
    while [ "$(lines "$cj")" -lt 2 ]; do
        kill -0 "$dpid" 2>/dev/null || break
        tries=$((tries + 1))
        [ "$tries" -gt 600 ] && break
        sleep 0.05
    done
    kill -KILL "$dpid" 2>/dev/null || true
    wait "$dpid" 2>/dev/null || true
    wait "$cpid" 2>/dev/null || true
    # SIGKILL leaves the dead daemon's socket file behind; remove it
    # so wait_socket tracks the restarted daemon's bind, not a stale
    # path nobody is listening on.
    rm -f "$dsock"
    # Restart on the same state directory: the request journal
    # recovers the submission, the cell journal resumes it, and an
    # attaching client sees the uninterrupted daemon's exact bytes.
    "$simd" --socket "$dsock" --state "$dstate" --jobs "$jobs" \
        2>/dev/null &
    dpid=$!
    wait_socket "$dsock"
    "$sim" --submit "$dsock" --attach 1 > "$work/dres$jobs.jsonl" \
        2> /dev/null \
        || fail "attach after daemon restart failed (jobs=$jobs)"
    kill -TERM "$dpid" 2>/dev/null || true
    wait "$dpid" 2>/dev/null || true
    cmp -s "$work/dref.jsonl" "$work/dres$jobs.jsonl" \
        || fail "daemon replay differs from uninterrupted stream (jobs=$jobs)"
done

echo "chaos_sweep: all legs passed"
