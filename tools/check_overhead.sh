#!/usr/bin/env sh
# Telemetry-off overhead gate (docs/OBSERVABILITY.md): with every
# telemetry flag off, the instrumented simulator must produce output
# byte-identical to the pre-telemetry goldens under tools/golden/ —
# the histograms, profiler scopes, flight-recorder hook and progress
# stream may cost nothing, change nothing, and leak nothing into the
# default path. A second (loose) gate times a telemetry-on run against
# the off run to catch a pathologically expensive on-path.
#
# The goldens were captured from the seed build; the only permitted
# difference since is the "build" provenance block that now leads
# every JSON export, which this script strips before comparing.
#
# A third gate gates the cycle kernel itself: `lrs_sim --throughput`
# re-measures per-family uops/sec (skip-ahead on, bit-identity checked
# inside the tool) and fails if any family drops more than 20% below
# the committed BENCH_5.json baseline (docs/PERFORMANCE.md). Like the
# wall-clock gate it is skipped under --no-time, so sanitized builds
# (tools/run_sanitized.sh) never flake on instrumented timings.
#
# Usage: tools/check_overhead.sh [--no-time] [build-dir]
#   --no-time  skip the wall-clock gate (sanitized / loaded machines)
#   build-dir  defaults to ./build
#
# Environment:
#   LRS_CHECK_OVERHEAD_NO_TIME=1   same as --no-time
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
golden="$repo_root/tools/golden"

do_time=1
if [ $# -gt 0 ] && [ "$1" = "--no-time" ]; then
    do_time=0
    shift
fi
[ "${LRS_CHECK_OVERHEAD_NO_TIME:-0}" = "1" ] && do_time=0
build_dir=${1:-"$repo_root/build"}
sim="$build_dir/tools/lrs_sim"
fig06="$build_dir/bench/fig06_window_sweep"
if [ ! -x "$sim" ] || [ ! -x "$fig06" ]; then
    echo "check_overhead: binaries missing under $build_dir" \
        "(cmake --build $build_dir)" >&2
    exit 2
fi

work=$(mktemp -d "${TMPDIR:-/tmp}/lrs_overhead.XXXXXX")
trap 'rm -rf "$work"' EXIT INT TERM

fail() {
    echo "check_overhead: FAIL: $*" >&2
    exit 1
}

# Remove the top-level "build" provenance block (always the first
# member, so the range is unambiguous at indent 2).
strip_build() {
    sed '/^  "build": {$/,/^  },$/d' "$1"
}

echo "check_overhead: byte-identity vs tools/golden (telemetry off)"

LRS_TRACE_LEN=40000 LRS_JOBS=2 LRS_BENCH_JSON="$work/fig06.json" \
    "$fig06" > "$work/fig06.txt"
cmp -s "$golden/fig06.txt" "$work/fig06.txt" \
    || fail "fig06 table differs from golden"
strip_build "$work/fig06.json" > "$work/fig06.stripped.json"
cmp -s "$golden/fig06.json" "$work/fig06.stripped.json" \
    || fail "fig06 JSON differs from golden (after provenance strip)"

"$sim" --trace wd --len 150000 --json "$work/single.json" \
    > "$work/single.txt"
cmp -s "$golden/single.txt" "$work/single.txt" \
    || fail "single-run table differs from golden"
strip_build "$work/single.json" > "$work/single.stripped.json"
cmp -s "$golden/single.json" "$work/single.stripped.json" \
    || fail "single-run JSON differs from golden (after strip)"

"$sim" --batch "$golden/grid.ini" --jobs 2 --json "$work/batch.json" \
    > "$work/batch.txt" 2> /dev/null
cmp -s "$golden/batch.txt" "$work/batch.txt" \
    || fail "batch table differs from golden"
strip_build "$work/batch.json" > "$work/batch.stripped.json"
cmp -s "$golden/batch.json" "$work/batch.stripped.json" \
    || fail "batch JSON differs from golden (after strip)"

if [ "$do_time" = 1 ]; then
    echo "check_overhead: wall-clock gate (telemetry on vs off)"
    # Milliseconds for one run; minimum of 3 to shed scheduler noise.
    bench_ms() {
        best=""
        for _ in 1 2 3; do
            s=$(date +%s%N)
            "$@" > /dev/null 2>&1
            e=$(date +%s%N)
            ms=$(( (e - s) / 1000000 ))
            if [ -z "$best" ] || [ "$ms" -lt "$best" ]; then
                best=$ms
            fi
        done
        echo "$best"
    }
    off_ms=$(bench_ms "$sim" --trace wd --len 150000)
    on_ms=$(bench_ms "$sim" --trace wd --len 150000 --histograms \
        --profile)
    echo "check_overhead: off=${off_ms}ms on=${on_ms}ms"
    # Loose gate: telemetry-on must stay within 3x of off (it is
    # designed to be a few percent; 3x catches only catastrophe
    # without flaking on loaded machines).
    [ "$on_ms" -le $(( off_ms * 3 + 50 )) ] \
        || fail "telemetry-on run ${on_ms}ms vs off ${off_ms}ms (>3x)"
fi

# Per-family "family"/"skip_uops_per_sec" pairs from a throughput
# JSON document (works on both BENCH_5.json's nested copy and a fresh
# lrs_sim --throughput export — the pairing keys appear only there).
tp_table() {
    awk '/"family":/ { fam = $0
                       sub(/.*"family": "/, "", fam)
                       sub(/".*/, "", fam) }
         /"skip_uops_per_sec":/ { v = $0
                                  sub(/.*: /, "", v)
                                  sub(/,.*/, "", v)
                                  print fam, v }' "$1"
}

bench5="$repo_root/BENCH_5.json"
if [ "$do_time" = 1 ] && [ -f "$bench5" ] \
    && grep -q '"cycle_throughput"' "$bench5" \
    && [ -n "$(tp_table "$bench5")" ]; then
    echo "check_overhead: cycle-kernel throughput gate (vs BENCH_5.json)"
    base_len=$(awk '/"cycle_throughput":/ { g = 1 }
                    g && /"len":/ { v = $0
                                    sub(/.*: /, "", v)
                                    sub(/,.*/, "", v)
                                    print v; exit }' "$bench5")
    set -- --throughput --len "${base_len:-40000}" --json "$work/tp.json"
    [ -f "$repo_root/tests/data/golden.champsim" ] \
        && set -- "$@" --champsim "$repo_root/tests/data/golden.champsim"
    "$sim" "$@" > /dev/null 2>&1 \
        || fail "lrs_sim --throughput failed (skip-ahead divergence?)"
    tp_table "$bench5" > "$work/tp_base.tab"
    tp_table "$work/tp.json" > "$work/tp_live.tab"
    awk 'NR == FNR { base[$1] = $2; next }
         { live[$1] = $2 }
         END {
             bad = 0
             for (f in base) {
                 if (!(f in live)) {
                     printf "check_overhead: %s missing from live run\n", f
                     bad = 1
                 } else if (live[f] < base[f] * 0.8) {
                     printf "check_overhead: %s: %.0f uops/s vs baseline %.0f (-%.1f%%)\n", \
                         f, live[f], base[f], (1 - live[f] / base[f]) * 100
                     bad = 1
                 }
             }
             exit bad
         }' "$work/tp_base.tab" "$work/tp_live.tab" \
        || fail "cycle-kernel throughput regressed >20% vs BENCH_5.json"
elif [ "$do_time" = 1 ]; then
    echo "check_overhead: skip throughput gate (no BENCH_5.json baseline)"
fi

echo "check_overhead: all gates passed"
