/**
 * @file
 * lrs_simd — the sweep service daemon (docs/SERVICE.md).
 *
 * Thin shell around service::Server: parse flags, install the
 * drain-on-SIGTERM handler, start, wait. All protocol, scheduling and
 * recovery behaviour lives in src/service/ where the tests exercise
 * it in-process.
 *
 * Exit codes follow the lrs_sim contract: 0 clean drain, 2 usage,
 * 3 invalid configuration, 4 I/O (bind/state-dir) failure.
 */

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/diag.hh"
#include "service/server.hh"

namespace
{

lrs::service::Server *g_server = nullptr;

void
onSignal(int)
{
    if (g_server)
        g_server->requestStop(); // async-signal-safe
}

void
usage(std::FILE *to)
{
    std::fprintf(to, R"(usage: lrs_simd --state DIR [options]

Crash-tolerant sweep service: accepts newline-delimited JSON sweep
submissions over a socket, journals them durably before acknowledging,
runs them through the checkpointing sweep supervisor and streams
per-cell results back. SIGTERM drains; a SIGKILLed daemon restarted
on the same --state directory resumes every accepted submission and
re-delivers results byte-identical to an uninterrupted run.

listeners (at least one required):
  --socket PATH        Unix-domain listening socket
  --tcp PORT           loopback TCP listener (0 = ephemeral port,
                       printed on startup)

state and execution:
  --state DIR          state directory: request + cell journals
  --jobs N             sweep pool width (default: grid "jobs" key,
                       else LRS_JOBS, else hardware concurrency)
  --retries N          per-cell retry budget (default 0)
  --isolate            fork each cell into a subprocess
  --cell-timeout MS    wall-clock watchdog per isolated cell

admission control:
  --max-clients N      concurrent connections (default 64)
  --max-line-bytes N   request line cap (default 1048576)
  --max-outbuf N       per-client send-buffer cap before the result
                       stream pauses (default 4194304)
  --quota-subs N       unfinished submissions per client (default 4)
  --quota-cells N      undelivered cells per client (default 8192)
  --max-cells N        cells per submitted grid (default 4096)
  --idle-timeout MS    close idle connections (default 0 = never)
  --drain-timeout MS   flush budget on SIGTERM drain (default 3000)

  -h, --help           this text
)");
}

std::uint64_t
parseCount(const char *flag, const char *text)
{
    char *end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(text, &end, 10);
    if (errno != 0 || end == text || *end != '\0') {
        std::fprintf(stderr, "lrs_simd: %s expects a number, got %s\n",
                     flag, text);
        std::exit(2);
    }
    return v;
}

} // namespace

int
main(int argc, char **argv)
{
    lrs::service::ServerOptions opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "lrs_simd: %s requires a value\n", flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "-h" || arg == "--help") {
            usage(stdout);
            return 0;
        } else if (arg == "--socket") {
            opts.socketPath = next("--socket");
        } else if (arg == "--tcp") {
            opts.tcpPort =
                static_cast<int>(parseCount("--tcp", next("--tcp")));
        } else if (arg == "--state") {
            opts.stateDir = next("--state");
        } else if (arg == "--jobs") {
            opts.workers = static_cast<unsigned>(
                parseCount("--jobs", next("--jobs")));
        } else if (arg == "--retries") {
            opts.retries = static_cast<unsigned>(
                parseCount("--retries", next("--retries")));
        } else if (arg == "--isolate") {
            opts.isolate = true;
        } else if (arg == "--cell-timeout") {
            opts.cellTimeoutMs =
                parseCount("--cell-timeout", next("--cell-timeout"));
        } else if (arg == "--max-clients") {
            opts.maxClients = static_cast<unsigned>(
                parseCount("--max-clients", next("--max-clients")));
        } else if (arg == "--max-line-bytes") {
            opts.maxLineBytes = static_cast<std::size_t>(parseCount(
                "--max-line-bytes", next("--max-line-bytes")));
        } else if (arg == "--max-outbuf") {
            opts.maxOutBufBytes = static_cast<std::size_t>(
                parseCount("--max-outbuf", next("--max-outbuf")));
        } else if (arg == "--quota-subs") {
            opts.maxPendingSubs = static_cast<unsigned>(
                parseCount("--quota-subs", next("--quota-subs")));
        } else if (arg == "--quota-cells") {
            opts.maxPendingCells =
                parseCount("--quota-cells", next("--quota-cells"));
        } else if (arg == "--max-cells") {
            opts.maxCellsPerSub =
                parseCount("--max-cells", next("--max-cells"));
        } else if (arg == "--idle-timeout") {
            opts.idleTimeoutMs =
                parseCount("--idle-timeout", next("--idle-timeout"));
        } else if (arg == "--drain-timeout") {
            opts.drainTimeoutMs =
                parseCount("--drain-timeout", next("--drain-timeout"));
        } else {
            std::fprintf(stderr, "lrs_simd: unknown flag %s\n",
                         arg.c_str());
            usage(stderr);
            return 2;
        }
    }

    lrs::service::Server server(std::move(opts));
    try {
        server.start();
    } catch (const lrs::ConfigError &e) {
        std::fprintf(stderr, "lrs_simd: %s\n", e.what());
        return 3;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "lrs_simd: %s\n", e.what());
        return 4;
    }

    g_server = &server;
    std::signal(SIGPIPE, SIG_IGN);
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = onSignal;
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);

    if (server.tcpPort() >= 0)
        std::fprintf(stderr, "lrs_simd: listening on 127.0.0.1:%d\n",
                     server.tcpPort());
    std::fprintf(stderr, "lrs_simd: ready\n");

    server.wait();       // until a drain completes
    server.stop(true);   // join threads (drain already ran)
    g_server = nullptr;
    std::fprintf(stderr, "lrs_simd: drained\n");
    return 0;
}
