#!/usr/bin/env sh
# Build the tree with AddressSanitizer + UndefinedBehaviorSanitizer and
# run the tier-1 test suite under them. Any sanitizer report fails the
# run (halt_on_error / abort) so CI and humans cannot miss it.
#
# Usage: tools/run_sanitized.sh [build-dir] [extra ctest args...]
#   default build dir: build-san (kept separate from the normal build)
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build-san"}
[ $# -gt 0 ] && shift

export ASAN_OPTIONS="halt_on_error=1:detect_leaks=1:${ASAN_OPTIONS:-}"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1:${UBSAN_OPTIONS:-}"

cmake -B "$build_dir" -S "$repo_root" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DLRS_SANITIZE="address;undefined"
cmake --build "$build_dir" -j "$(nproc 2>/dev/null || echo 4)"
ctest --test-dir "$build_dir" --output-on-failure -j \
    "$(nproc 2>/dev/null || echo 4)" "$@"

echo "sanitized test run passed: $build_dir"
