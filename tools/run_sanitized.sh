#!/usr/bin/env sh
# Build the tree under sanitizers and run the tier-1 test suite with
# them armed. Any sanitizer report fails the run (halt_on_error /
# abort) so CI and humans cannot miss it.
#
# Modes:
#   default   AddressSanitizer + UndefinedBehaviorSanitizer over the
#             full suite
#   --tsan    ThreadSanitizer (mutually exclusive with ASan) over the
#             parallel sweep engine tests (ctest -R Parallel) — the
#             data-race check for core/parallel.hh and the pool-driven
#             benches (docs/PARALLELISM.md)
#
# Usage: tools/run_sanitized.sh [--tsan] [build-dir] [extra ctest args...]
#   default build dirs: build-san / build-tsan (kept separate from the
#   normal build)
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)

mode=asan
if [ $# -gt 0 ] && [ "$1" = "--tsan" ]; then
    mode=tsan
    shift
fi

if [ "$mode" = "tsan" ]; then
    build_dir=${1:-"$repo_root/build-tsan"}
    sanitizers="thread"
    # TSan races the whole parallel suite with a few workers even on
    # small machines so cross-thread interleavings actually happen.
    export LRS_JOBS="${LRS_JOBS:-4}"
    export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1:${TSAN_OPTIONS:-}"
else
    build_dir=${1:-"$repo_root/build-san"}
    sanitizers="address;undefined"
    export ASAN_OPTIONS="halt_on_error=1:detect_leaks=1:${ASAN_OPTIONS:-}"
    export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1:${UBSAN_OPTIONS:-}"
fi
[ $# -gt 0 ] && shift

cmake -B "$build_dir" -S "$repo_root" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DLRS_SANITIZE="$sanitizers"
cmake --build "$build_dir" -j "$(nproc 2>/dev/null || echo 4)"
if [ "$mode" = "tsan" ]; then
    ctest --test-dir "$build_dir" --output-on-failure -j \
        "$(nproc 2>/dev/null || echo 4)" -R Parallel "$@"
    # Sweep-supervisor chaos drill without the --isolate leg: fork()
    # in an instrumented multithreaded process is outside TSan's
    # model. The fork-free daemon legs (lrs_simd SIGKILL/restart
    # byte-identity, docs/SERVICE.md) still run and race the event
    # loop + scheduler threads under TSan.
    "$repo_root/tools/chaos_sweep.sh" --no-isolate "$build_dir"
    # Short hostile-input fuzz leg: the reader is single-threaded, so
    # this is a smoke check that the fuzz harness itself is
    # race-clean, not the main fuzz gate (that is the ASan leg).
    "$repo_root/tools/fuzz_trace.sh" "$build_dir" 10 1
else
    ctest --test-dir "$build_dir" --output-on-failure -j \
        "$(nproc 2>/dev/null || echo 4)" "$@"
    # Full chaos drill, daemon legs included. The sacrificial cell
    # raises SIGKILL instead of SIGSEGV: ASan intercepts segfaults
    # into its own report, while SIGKILL drives the identical CRASHED
    # bookkeeping uninstrumented.
    LRS_CHAOS_CRASH_SIG=9 "$repo_root/tools/chaos_sweep.sh" "$build_dir"
    # Hostile-input gate (docs/TRACES.md): >= 60 s of structure-aware
    # trace fuzzing under ASan/UBSan; any sanitizer report, crash or
    # unclassified exception fails the run.
    "$repo_root/tools/fuzz_trace.sh" "$build_dir" 60 1
fi
# Telemetry-off byte-identity gate under the sanitized binary (the
# simulated output is deterministic regardless of instrumentation).
# Timing is meaningless under sanitizers, so the wall gate is skipped.
"$repo_root/tools/check_overhead.sh" --no-time "$build_dir"

echo "sanitized ($sanitizers) test run passed: $build_dir"
