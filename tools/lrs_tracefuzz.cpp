/**
 * @file
 * lrs_tracefuzz — deterministic structure-aware fuzzer for the
 * ChampSim trace reader (the hostile-input gate of docs/TRACES.md).
 *
 * Three modes:
 *
 *   lrs_tracefuzz gen OUT RECORDS SEED
 *       Write a well-formed pseudo-random ChampSim trace (branch /
 *       load / store / ALU mix) — the corpus generator, also used to
 *       produce the committed golden fixture under tests/data/.
 *
 *   lrs_tracefuzz fuzz CORPUS SECONDS SEED
 *       Time-bounded fuzzing: each iteration derives a mutant of the
 *       corpus with 1..4 structure-aware mutations (bit flips, field
 *       boundary values, record duplication/splice/zeroing, torn
 *       tails, garbage appends) and feeds it to the reader in strict
 *       AND recovery mode, under occasional adversarially small
 *       resource caps. The reader must either return a trace or throw
 *       a *classified* TraceError — any other escape (unclassified
 *       exception, crash, hang, sanitizer finding) fails the gate.
 *
 *   lrs_tracefuzz once CORPUS ITER SEED
 *       Re-run exactly iteration ITER of the fuzz schedule — the
 *       reproducer: the failure report of `fuzz` names the iteration.
 *
 * Everything is keyed off (SEED, iteration): the schedule is
 * deterministic, so a finding reproduces byte-for-byte with `once`.
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "common/diag.hh"
#include "trace/champsim_reader.hh"

using namespace lrs;

namespace
{

/** Deterministic engine: mt19937_64's sequence is pinned by the
 *  standard, and we draw with modulo, never distributions. */
std::uint64_t
below(std::mt19937_64 &rng, std::uint64_t n)
{
    return n ? rng() % n : 0;
}

void
writeRecord(std::vector<std::uint8_t> &out, std::uint64_t ip,
            std::uint8_t is_branch, std::uint8_t taken,
            const std::uint8_t dreg[2], const std::uint8_t sreg[4],
            const std::uint64_t dmem[2], const std::uint64_t smem[4])
{
    std::uint8_t rec[kChampSimRecordBytes] = {};
    std::memcpy(rec + 0, &ip, 8);
    rec[8] = is_branch;
    rec[9] = taken;
    std::memcpy(rec + 10, dreg, 2);
    std::memcpy(rec + 12, sreg, 4);
    std::memcpy(rec + 16, dmem, 16);
    std::memcpy(rec + 32, smem, 32);
    out.insert(out.end(), rec, rec + kChampSimRecordBytes);
}

/** A plausible, varied instruction stream (every decode path). */
std::vector<std::uint8_t>
generate(std::uint64_t records, std::uint64_t seed)
{
    std::mt19937_64 rng(seed);
    std::vector<std::uint8_t> out;
    out.reserve(records * kChampSimRecordBytes);
    std::uint64_t ip = 0x400000;
    for (std::uint64_t i = 0; i < records; ++i) {
        ip += 4 + 4 * below(rng, 3);
        const bool branch = below(rng, 10) == 0;
        const std::uint8_t taken =
            branch && below(rng, 5) < 3 ? 1 : 0;
        std::uint8_t dreg[2] = {}, sreg[4] = {};
        std::uint64_t dmem[2] = {}, smem[4] = {};
        dreg[0] = static_cast<std::uint8_t>(below(rng, 64));
        sreg[0] = static_cast<std::uint8_t>(below(rng, 64));
        sreg[1] = static_cast<std::uint8_t>(below(rng, 30));
        const std::uint64_t kind = below(rng, 10);
        if (kind < 4) { // load
            smem[0] = 0x10000 + below(rng, 1 << 14) * 8;
            if (kind == 0)
                smem[1] = 0x40000 + below(rng, 1 << 12) * 8;
        } else if (kind < 6) { // store
            dmem[0] = 0x80000 + below(rng, 1 << 14) * 8;
        } else if (kind == 6) { // load+store (RMW)
            smem[0] = 0x10000 + below(rng, 1 << 14) * 8;
            dmem[0] = smem[0];
        }
        writeRecord(out, ip, branch ? 1 : 0, taken, dreg, sreg, dmem,
                    smem);
    }
    return out;
}

/** One deterministic mutant of the corpus for (seed, iteration). */
std::vector<std::uint8_t>
mutate(const std::vector<std::uint8_t> &corpus, std::uint64_t seed,
       std::uint64_t iter)
{
    // Key the engine off both, so `once` can replay any iteration
    // without running the preceding ones.
    std::mt19937_64 rng(seed * 0x9e3779b97f4a7c15ull + iter);
    std::vector<std::uint8_t> m = corpus;
    const std::uint64_t mutations = 1 + below(rng, 4);
    for (std::uint64_t k = 0; k < mutations && !m.empty(); ++k) {
        switch (below(rng, 8)) {
        case 0: { // single bit flip
            const std::uint64_t off = below(rng, m.size());
            m[off] ^= static_cast<std::uint8_t>(1u << below(rng, 8));
            break;
        }
        case 1: { // random byte
            m[below(rng, m.size())] =
                static_cast<std::uint8_t>(rng());
            break;
        }
        case 2: { // u64 field boundary value, 8-aligned
            if (m.size() < 8)
                break;
            const std::uint64_t slot = below(rng, m.size() / 8);
            static const std::uint64_t kEdge[] = {
                0,  ~0ull, 0x8000000000000000ull, 1,
                64, 0xffffffffull, 0x7fffffffffffffffull};
            const std::uint64_t v = kEdge[below(rng, 7)];
            std::memcpy(m.data() + slot * 8, &v, 8);
            break;
        }
        case 3: { // duplicate one record over another
            const std::uint64_t n = m.size() / kChampSimRecordBytes;
            if (n < 2)
                break;
            const std::uint64_t src = below(rng, n);
            const std::uint64_t dst = below(rng, n);
            std::memcpy(m.data() + dst * kChampSimRecordBytes,
                        m.data() + src * kChampSimRecordBytes,
                        kChampSimRecordBytes);
            break;
        }
        case 4: { // splice bytes out (tears the 64-byte framing)
            const std::uint64_t at = below(rng, m.size());
            const std::uint64_t cut =
                1 + below(rng, std::min<std::uint64_t>(
                                   96, m.size() - at));
            m.erase(m.begin() + static_cast<std::ptrdiff_t>(at),
                    m.begin() + static_cast<std::ptrdiff_t>(at + cut));
            break;
        }
        case 5: { // truncate (torn tail)
            m.resize(below(rng, m.size() + 1));
            break;
        }
        case 6: { // append garbage
            const std::uint64_t add = 1 + below(rng, 160);
            for (std::uint64_t i = 0; i < add; ++i)
                m.push_back(static_cast<std::uint8_t>(rng()));
            break;
        }
        case 7: { // zero a whole record
            const std::uint64_t n = m.size() / kChampSimRecordBytes;
            if (n == 0)
                break;
            std::memset(m.data() +
                            below(rng, n) * kChampSimRecordBytes,
                        0, kChampSimRecordBytes);
            break;
        }
        }
    }
    return m;
}

struct IterStats
{
    std::uint64_t ok = 0;
    std::uint64_t traceErrors = 0;
};

/**
 * Feed one mutant through the reader, strict then recovery, with the
 * occasional adversarially small cap. Returns false (after printing a
 * reproducer line) on any non-classified escape.
 */
bool
runOne(const std::vector<std::uint8_t> &mutant, std::uint64_t seed,
       std::uint64_t iter, IterStats &st)
{
    std::mt19937_64 rng(seed * 0x2545f4914f6cdd1dull + iter);
    for (const bool recover : {false, true}) {
        ChampSimReadOptions opts;
        opts.read.recover = recover;
        if (below(rng, 4) == 0)
            opts.read.badRecordBudget = below(rng, 32);
        if (below(rng, 4) == 0)
            opts.maxInstructions = below(rng, 64);
        if (below(rng, 4) == 0)
            opts.maxPages = 1 + below(rng, 16);
        if (below(rng, 4) == 0)
            opts.maxFileBytes = below(rng, 8192);
        std::string bytes(
            reinterpret_cast<const char *>(mutant.data()),
            mutant.size());
        std::istringstream is(std::move(bytes));
        try {
            const auto trace = readChampSimTrace(
                is, "fuzz", opts, nullptr, nullptr);
            // The decoded stream must honour the structural
            // invariants the core relies on (uop count bound per
            // record; STA/STD pairing is asserted inside the core).
            if (trace->size() >
                (mutant.size() / kChampSimRecordBytes + 1) * 13) {
                std::fprintf(stderr,
                             "FAIL iter %llu: %zu uops from %zu "
                             "bytes breaks the per-record bound\n",
                             static_cast<unsigned long long>(iter),
                             trace->size(), mutant.size());
                return false;
            }
            ++st.ok;
        } catch (const TraceError &) {
            ++st.traceErrors; // classified: the contract
        } catch (const std::exception &e) {
            std::fprintf(
                stderr,
                "FAIL iter %llu (recover=%d): unclassified "
                "exception: %s\nreproduce: lrs_tracefuzz once "
                "CORPUS %llu SEED\n",
                static_cast<unsigned long long>(iter), recover ? 1 : 0,
                e.what(), static_cast<unsigned long long>(iter));
            return false;
        }
    }
    return true;
}

std::vector<std::uint8_t>
readFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        std::exit(2);
    }
    std::ostringstream ss;
    ss << is.rdbuf();
    const std::string s = ss.str();
    return {s.begin(), s.end()};
}

} // namespace

int
main(int argc, char **argv)
{
    const auto usage = [&] {
        std::fprintf(stderr,
                     "usage: %s gen OUT RECORDS SEED\n"
                     "       %s fuzz CORPUS SECONDS SEED\n"
                     "       %s once CORPUS ITER SEED\n",
                     argv[0], argv[0], argv[0]);
        return 2;
    };
    if (argc != 5)
        return usage();
    const std::string mode = argv[1];
    const std::string path = argv[2];
    const std::uint64_t n = std::strtoull(argv[3], nullptr, 10);
    const std::uint64_t seed = std::strtoull(argv[4], nullptr, 10);

    if (mode == "gen") {
        const std::vector<std::uint8_t> bytes = generate(n, seed);
        std::ofstream os(path, std::ios::binary);
        os.write(reinterpret_cast<const char *>(bytes.data()),
                 static_cast<std::streamsize>(bytes.size()));
        if (!os) {
            std::fprintf(stderr, "write failed: %s\n", path.c_str());
            return 2;
        }
        std::printf("wrote %zu bytes (%llu records) to %s\n",
                    bytes.size(), static_cast<unsigned long long>(n),
                    path.c_str());
        return 0;
    }

    const std::vector<std::uint8_t> corpus = readFile(path);
    if (mode == "once") {
        IterStats st;
        const bool ok =
            runOne(mutate(corpus, seed, n), seed, n, st);
        std::printf("iter %llu: %s\n",
                    static_cast<unsigned long long>(n),
                    ok ? "ok" : "FAILED");
        return ok ? 0 : 1;
    }
    if (mode != "fuzz")
        return usage();

    const auto t0 = std::chrono::steady_clock::now();
    IterStats st;
    std::uint64_t iter = 0;
    while (std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
               .count() < static_cast<double>(n)) {
        if (!runOne(mutate(corpus, seed, iter), seed, iter, st))
            return 1;
        ++iter;
    }
    std::printf("fuzzed %llu iteration(s) in %llus: %llu clean "
                "decode(s), %llu classified rejection(s), 0 escapes\n",
                static_cast<unsigned long long>(iter),
                static_cast<unsigned long long>(n),
                static_cast<unsigned long long>(st.ok),
                static_cast<unsigned long long>(st.traceErrors));
    return 0;
}
