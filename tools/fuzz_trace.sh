#!/usr/bin/env sh
# Hostile-input fuzz gate for the ChampSim trace reader
# (docs/TRACES.md). Generates a deterministic corpus, then runs the
# structure-aware mutator (tools/lrs_tracefuzz.cpp) against the reader
# for a time budget. Zero crashes, hangs or unclassified exceptions is
# the pass condition; run it against a sanitized build-dir (see
# tools/run_sanitized.sh, which wires this in) to also require zero
# ASan/UBSan findings.
#
# Usage: tools/fuzz_trace.sh [build-dir] [seconds] [seed]
#   defaults: build / 60 / 1
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
seconds=${2:-60}
seed=${3:-1}

fuzz="$build_dir/tools/lrs_tracefuzz"
if [ ! -x "$fuzz" ]; then
    echo "error: $fuzz not built (cmake --build $build_dir)" >&2
    exit 2
fi

corpus="$build_dir/fuzz_trace.corpus"
"$fuzz" gen "$corpus" 1024 "$seed"

# Two corpora exercise different code-path mixes, splitting the time
# budget: the generated well-formed stream (mutations mostly produce
# near-valid records that reach deep decode paths) and the committed
# golden fixture (pins the schedule to bytes that never change
# between runs).
half=$((seconds / 2))
[ "$half" -lt 1 ] && half=1
"$fuzz" fuzz "$corpus" "$half" "$seed"
if [ -f "$repo_root/tests/data/golden.champsim" ]; then
    "$fuzz" fuzz "$repo_root/tests/data/golden.champsim" \
        "$half" "$seed"
fi

echo "fuzz_trace: pass (no crashes, hangs or unclassified escapes)"
