file(REMOVE_RECURSE
  "CMakeFiles/ablation_path_cht.dir/ablation_path_cht.cpp.o"
  "CMakeFiles/ablation_path_cht.dir/ablation_path_cht.cpp.o.d"
  "ablation_path_cht"
  "ablation_path_cht.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_path_cht.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
