# Empty compiler generated dependencies file for ablation_path_cht.
# This may be replaced when dependencies are built.
