file(REMOVE_RECURSE
  "CMakeFiles/ablation_cht.dir/ablation_cht.cpp.o"
  "CMakeFiles/ablation_cht.dir/ablation_cht.cpp.o.d"
  "ablation_cht"
  "ablation_cht.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cht.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
