# Empty dependencies file for ablation_cht.
# This may be replaced when dependencies are built.
