file(REMOVE_RECURSE
  "CMakeFiles/ablation_l2hmp.dir/ablation_l2hmp.cpp.o"
  "CMakeFiles/ablation_l2hmp.dir/ablation_l2hmp.cpp.o.d"
  "ablation_l2hmp"
  "ablation_l2hmp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_l2hmp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
