# Empty compiler generated dependencies file for ablation_l2hmp.
# This may be replaced when dependencies are built.
