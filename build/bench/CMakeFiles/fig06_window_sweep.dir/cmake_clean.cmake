file(REMOVE_RECURSE
  "CMakeFiles/fig06_window_sweep.dir/fig06_window_sweep.cpp.o"
  "CMakeFiles/fig06_window_sweep.dir/fig06_window_sweep.cpp.o.d"
  "fig06_window_sweep"
  "fig06_window_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_window_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
