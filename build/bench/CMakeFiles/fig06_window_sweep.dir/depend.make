# Empty dependencies file for fig06_window_sweep.
# This may be replaced when dependencies are built.
