file(REMOVE_RECURSE
  "CMakeFiles/fig05_load_classification.dir/fig05_load_classification.cpp.o"
  "CMakeFiles/fig05_load_classification.dir/fig05_load_classification.cpp.o.d"
  "fig05_load_classification"
  "fig05_load_classification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_load_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
