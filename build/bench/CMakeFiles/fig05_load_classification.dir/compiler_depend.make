# Empty compiler generated dependencies file for fig05_load_classification.
# This may be replaced when dependencies are built.
