# Empty dependencies file for fig11_hmp_speedup.
# This may be replaced when dependencies are built.
