file(REMOVE_RECURSE
  "CMakeFiles/fig04_pipeline_compare.dir/fig04_pipeline_compare.cpp.o"
  "CMakeFiles/fig04_pipeline_compare.dir/fig04_pipeline_compare.cpp.o.d"
  "fig04_pipeline_compare"
  "fig04_pipeline_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_pipeline_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
