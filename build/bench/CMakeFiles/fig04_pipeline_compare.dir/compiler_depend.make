# Empty compiler generated dependencies file for fig04_pipeline_compare.
# This may be replaced when dependencies are built.
