file(REMOVE_RECURSE
  "CMakeFiles/fig10_hmp_stats.dir/fig10_hmp_stats.cpp.o"
  "CMakeFiles/fig10_hmp_stats.dir/fig10_hmp_stats.cpp.o.d"
  "fig10_hmp_stats"
  "fig10_hmp_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_hmp_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
