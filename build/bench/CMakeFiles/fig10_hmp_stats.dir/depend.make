# Empty dependencies file for fig10_hmp_stats.
# This may be replaced when dependencies are built.
