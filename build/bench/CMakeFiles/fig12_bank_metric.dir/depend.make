# Empty dependencies file for fig12_bank_metric.
# This may be replaced when dependencies are built.
