file(REMOVE_RECURSE
  "CMakeFiles/fig12_bank_metric.dir/fig12_bank_metric.cpp.o"
  "CMakeFiles/fig12_bank_metric.dir/fig12_bank_metric.cpp.o.d"
  "fig12_bank_metric"
  "fig12_bank_metric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_bank_metric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
