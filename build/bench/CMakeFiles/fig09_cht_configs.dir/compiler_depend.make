# Empty compiler generated dependencies file for fig09_cht_configs.
# This may be replaced when dependencies are built.
