file(REMOVE_RECURSE
  "CMakeFiles/fig09_cht_configs.dir/fig09_cht_configs.cpp.o"
  "CMakeFiles/fig09_cht_configs.dir/fig09_cht_configs.cpp.o.d"
  "fig09_cht_configs"
  "fig09_cht_configs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_cht_configs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
