file(REMOVE_RECURSE
  "CMakeFiles/fig07_ordering_speedup.dir/fig07_ordering_speedup.cpp.o"
  "CMakeFiles/fig07_ordering_speedup.dir/fig07_ordering_speedup.cpp.o.d"
  "fig07_ordering_speedup"
  "fig07_ordering_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_ordering_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
