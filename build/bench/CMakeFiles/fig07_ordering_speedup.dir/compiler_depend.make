# Empty compiler generated dependencies file for fig07_ordering_speedup.
# This may be replaced when dependencies are built.
