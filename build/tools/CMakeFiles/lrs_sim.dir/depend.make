# Empty dependencies file for lrs_sim.
# This may be replaced when dependencies are built.
