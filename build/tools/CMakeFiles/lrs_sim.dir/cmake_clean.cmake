file(REMOVE_RECURSE
  "CMakeFiles/lrs_sim.dir/lrs_sim.cpp.o"
  "CMakeFiles/lrs_sim.dir/lrs_sim.cpp.o.d"
  "lrs_sim"
  "lrs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lrs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
