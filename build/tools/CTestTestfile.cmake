# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_basic "/root/repo/build/tools/lrs_sim" "--trace" "wd" "--len" "15000" "--scheme" "exclusive")
set_tests_properties(cli_basic PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_compare "/root/repo/build/tools/lrs_sim" "--trace" "pm" "--len" "15000" "--compare-schemes")
set_tests_properties(cli_compare PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_sliced "/root/repo/build/tools/lrs_sim" "--trace" "swim" "--len" "15000" "--bank-mode" "sliced" "--bank-pred" "addr")
set_tests_properties(cli_sliced PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_dump_config "/root/repo/build/tools/lrs_sim" "--dump-config")
set_tests_properties(cli_dump_config PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_trace_roundtrip "sh" "-c" "/root/repo/build/tools/lrs_sim --trace li --len 10000 --dump-trace           /root/repo/build/tools/rt.lrstrc &&           /root/repo/build/tools/lrs_sim --trace-file           /root/repo/build/tools/rt.lrstrc --scheme perfect")
set_tests_properties(cli_trace_roundtrip PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_rejects_bad_flag "/root/repo/build/tools/lrs_sim" "--warp-drive")
set_tests_properties(cli_rejects_bad_flag PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;19;add_test;/root/repo/tools/CMakeLists.txt;0;")
