# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "wd" "20000")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_disambiguation "/root/repo/build/examples/disambiguation_explorer" "pm" "20000")
set_tests_properties(example_disambiguation PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_hitmiss "/root/repo/build/examples/hitmiss_demo" "gcc" "20000")
set_tests_properties(example_hitmiss PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_bank "/root/repo/build/examples/bank_scheduling" "swim" "20000")
set_tests_properties(example_bank PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_smt "/root/repo/build/examples/smt_switch" "tpcc" "20000")
set_tests_properties(example_smt PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
