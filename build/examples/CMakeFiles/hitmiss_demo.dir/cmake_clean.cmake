file(REMOVE_RECURSE
  "CMakeFiles/hitmiss_demo.dir/hitmiss_demo.cpp.o"
  "CMakeFiles/hitmiss_demo.dir/hitmiss_demo.cpp.o.d"
  "hitmiss_demo"
  "hitmiss_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hitmiss_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
