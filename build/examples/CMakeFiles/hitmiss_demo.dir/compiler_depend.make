# Empty compiler generated dependencies file for hitmiss_demo.
# This may be replaced when dependencies are built.
