# Empty compiler generated dependencies file for smt_switch.
# This may be replaced when dependencies are built.
