file(REMOVE_RECURSE
  "CMakeFiles/smt_switch.dir/smt_switch.cpp.o"
  "CMakeFiles/smt_switch.dir/smt_switch.cpp.o.d"
  "smt_switch"
  "smt_switch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smt_switch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
