file(REMOVE_RECURSE
  "CMakeFiles/disambiguation_explorer.dir/disambiguation_explorer.cpp.o"
  "CMakeFiles/disambiguation_explorer.dir/disambiguation_explorer.cpp.o.d"
  "disambiguation_explorer"
  "disambiguation_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disambiguation_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
