# Empty dependencies file for disambiguation_explorer.
# This may be replaced when dependencies are built.
