# Empty compiler generated dependencies file for bank_scheduling.
# This may be replaced when dependencies are built.
