file(REMOVE_RECURSE
  "CMakeFiles/bank_scheduling.dir/bank_scheduling.cpp.o"
  "CMakeFiles/bank_scheduling.dir/bank_scheduling.cpp.o.d"
  "bank_scheduling"
  "bank_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bank_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
