file(REMOVE_RECURSE
  "liblrs_memory.a"
)
