# Empty compiler generated dependencies file for lrs_memory.
# This may be replaced when dependencies are built.
