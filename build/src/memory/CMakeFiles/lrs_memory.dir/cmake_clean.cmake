file(REMOVE_RECURSE
  "CMakeFiles/lrs_memory.dir/cache.cc.o"
  "CMakeFiles/lrs_memory.dir/cache.cc.o.d"
  "CMakeFiles/lrs_memory.dir/hierarchy.cc.o"
  "CMakeFiles/lrs_memory.dir/hierarchy.cc.o.d"
  "CMakeFiles/lrs_memory.dir/mob.cc.o"
  "CMakeFiles/lrs_memory.dir/mob.cc.o.d"
  "liblrs_memory.a"
  "liblrs_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lrs_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
