file(REMOVE_RECURSE
  "CMakeFiles/lrs_common.dir/stats.cc.o"
  "CMakeFiles/lrs_common.dir/stats.cc.o.d"
  "liblrs_common.a"
  "liblrs_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lrs_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
