# Empty dependencies file for lrs_common.
# This may be replaced when dependencies are built.
