file(REMOVE_RECURSE
  "liblrs_common.a"
)
