file(REMOVE_RECURSE
  "CMakeFiles/lrs_trace.dir/library.cc.o"
  "CMakeFiles/lrs_trace.dir/library.cc.o.d"
  "CMakeFiles/lrs_trace.dir/serialize.cc.o"
  "CMakeFiles/lrs_trace.dir/serialize.cc.o.d"
  "CMakeFiles/lrs_trace.dir/synthetic.cc.o"
  "CMakeFiles/lrs_trace.dir/synthetic.cc.o.d"
  "CMakeFiles/lrs_trace.dir/uop.cc.o"
  "CMakeFiles/lrs_trace.dir/uop.cc.o.d"
  "liblrs_trace.a"
  "liblrs_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lrs_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
