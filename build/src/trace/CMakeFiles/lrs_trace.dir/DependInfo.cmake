
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/library.cc" "src/trace/CMakeFiles/lrs_trace.dir/library.cc.o" "gcc" "src/trace/CMakeFiles/lrs_trace.dir/library.cc.o.d"
  "/root/repo/src/trace/serialize.cc" "src/trace/CMakeFiles/lrs_trace.dir/serialize.cc.o" "gcc" "src/trace/CMakeFiles/lrs_trace.dir/serialize.cc.o.d"
  "/root/repo/src/trace/synthetic.cc" "src/trace/CMakeFiles/lrs_trace.dir/synthetic.cc.o" "gcc" "src/trace/CMakeFiles/lrs_trace.dir/synthetic.cc.o.d"
  "/root/repo/src/trace/uop.cc" "src/trace/CMakeFiles/lrs_trace.dir/uop.cc.o" "gcc" "src/trace/CMakeFiles/lrs_trace.dir/uop.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lrs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
