# Empty compiler generated dependencies file for lrs_trace.
# This may be replaced when dependencies are built.
