file(REMOVE_RECURSE
  "liblrs_trace.a"
)
