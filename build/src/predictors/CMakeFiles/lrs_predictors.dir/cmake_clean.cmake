file(REMOVE_RECURSE
  "CMakeFiles/lrs_predictors.dir/addr_pred.cc.o"
  "CMakeFiles/lrs_predictors.dir/addr_pred.cc.o.d"
  "CMakeFiles/lrs_predictors.dir/bank_pred.cc.o"
  "CMakeFiles/lrs_predictors.dir/bank_pred.cc.o.d"
  "CMakeFiles/lrs_predictors.dir/chooser.cc.o"
  "CMakeFiles/lrs_predictors.dir/chooser.cc.o.d"
  "CMakeFiles/lrs_predictors.dir/cht.cc.o"
  "CMakeFiles/lrs_predictors.dir/cht.cc.o.d"
  "CMakeFiles/lrs_predictors.dir/hitmiss.cc.o"
  "CMakeFiles/lrs_predictors.dir/hitmiss.cc.o.d"
  "CMakeFiles/lrs_predictors.dir/store_sets.cc.o"
  "CMakeFiles/lrs_predictors.dir/store_sets.cc.o.d"
  "liblrs_predictors.a"
  "liblrs_predictors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lrs_predictors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
