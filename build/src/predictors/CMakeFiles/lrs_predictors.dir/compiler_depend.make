# Empty compiler generated dependencies file for lrs_predictors.
# This may be replaced when dependencies are built.
