file(REMOVE_RECURSE
  "liblrs_predictors.a"
)
