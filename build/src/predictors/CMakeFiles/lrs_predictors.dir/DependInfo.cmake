
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/predictors/addr_pred.cc" "src/predictors/CMakeFiles/lrs_predictors.dir/addr_pred.cc.o" "gcc" "src/predictors/CMakeFiles/lrs_predictors.dir/addr_pred.cc.o.d"
  "/root/repo/src/predictors/bank_pred.cc" "src/predictors/CMakeFiles/lrs_predictors.dir/bank_pred.cc.o" "gcc" "src/predictors/CMakeFiles/lrs_predictors.dir/bank_pred.cc.o.d"
  "/root/repo/src/predictors/chooser.cc" "src/predictors/CMakeFiles/lrs_predictors.dir/chooser.cc.o" "gcc" "src/predictors/CMakeFiles/lrs_predictors.dir/chooser.cc.o.d"
  "/root/repo/src/predictors/cht.cc" "src/predictors/CMakeFiles/lrs_predictors.dir/cht.cc.o" "gcc" "src/predictors/CMakeFiles/lrs_predictors.dir/cht.cc.o.d"
  "/root/repo/src/predictors/hitmiss.cc" "src/predictors/CMakeFiles/lrs_predictors.dir/hitmiss.cc.o" "gcc" "src/predictors/CMakeFiles/lrs_predictors.dir/hitmiss.cc.o.d"
  "/root/repo/src/predictors/store_sets.cc" "src/predictors/CMakeFiles/lrs_predictors.dir/store_sets.cc.o" "gcc" "src/predictors/CMakeFiles/lrs_predictors.dir/store_sets.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lrs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
