file(REMOVE_RECURSE
  "CMakeFiles/lrs_core.dir/analysis.cc.o"
  "CMakeFiles/lrs_core.dir/analysis.cc.o.d"
  "CMakeFiles/lrs_core.dir/config_io.cc.o"
  "CMakeFiles/lrs_core.dir/config_io.cc.o.d"
  "CMakeFiles/lrs_core.dir/core.cc.o"
  "CMakeFiles/lrs_core.dir/core.cc.o.d"
  "CMakeFiles/lrs_core.dir/runner.cc.o"
  "CMakeFiles/lrs_core.dir/runner.cc.o.d"
  "liblrs_core.a"
  "liblrs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lrs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
