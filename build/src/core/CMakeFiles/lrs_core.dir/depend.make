# Empty dependencies file for lrs_core.
# This may be replaced when dependencies are built.
