
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analysis.cc" "src/core/CMakeFiles/lrs_core.dir/analysis.cc.o" "gcc" "src/core/CMakeFiles/lrs_core.dir/analysis.cc.o.d"
  "/root/repo/src/core/config_io.cc" "src/core/CMakeFiles/lrs_core.dir/config_io.cc.o" "gcc" "src/core/CMakeFiles/lrs_core.dir/config_io.cc.o.d"
  "/root/repo/src/core/core.cc" "src/core/CMakeFiles/lrs_core.dir/core.cc.o" "gcc" "src/core/CMakeFiles/lrs_core.dir/core.cc.o.d"
  "/root/repo/src/core/runner.cc" "src/core/CMakeFiles/lrs_core.dir/runner.cc.o" "gcc" "src/core/CMakeFiles/lrs_core.dir/runner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lrs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/lrs_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/lrs_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/predictors/CMakeFiles/lrs_predictors.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
