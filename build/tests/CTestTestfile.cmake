# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_hierarchy[1]_include.cmake")
include("/root/repo/build/tests/test_mob[1]_include.cmake")
include("/root/repo/build/tests/test_predictors[1]_include.cmake")
include("/root/repo/build/tests/test_cht[1]_include.cmake")
include("/root/repo/build/tests/test_hitmiss[1]_include.cmake")
include("/root/repo/build/tests/test_addr_pred[1]_include.cmake")
include("/root/repo/build/tests/test_bank_pred[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_bankmodes[1]_include.cmake")
include("/root/repo/build/tests/test_serialize[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_config_io[1]_include.cmake")
include("/root/repo/build/tests/test_store_sets[1]_include.cmake")
