# Empty dependencies file for test_mob.
# This may be replaced when dependencies are built.
