file(REMOVE_RECURSE
  "CMakeFiles/test_mob.dir/test_mob.cpp.o"
  "CMakeFiles/test_mob.dir/test_mob.cpp.o.d"
  "test_mob"
  "test_mob.pdb"
  "test_mob[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
