file(REMOVE_RECURSE
  "CMakeFiles/test_hitmiss.dir/test_hitmiss.cpp.o"
  "CMakeFiles/test_hitmiss.dir/test_hitmiss.cpp.o.d"
  "test_hitmiss"
  "test_hitmiss.pdb"
  "test_hitmiss[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hitmiss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
