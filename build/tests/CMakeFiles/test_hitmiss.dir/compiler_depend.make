# Empty compiler generated dependencies file for test_hitmiss.
# This may be replaced when dependencies are built.
