# Empty compiler generated dependencies file for test_cht.
# This may be replaced when dependencies are built.
