file(REMOVE_RECURSE
  "CMakeFiles/test_cht.dir/test_cht.cpp.o"
  "CMakeFiles/test_cht.dir/test_cht.cpp.o.d"
  "test_cht"
  "test_cht.pdb"
  "test_cht[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cht.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
