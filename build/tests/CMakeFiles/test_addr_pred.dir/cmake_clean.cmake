file(REMOVE_RECURSE
  "CMakeFiles/test_addr_pred.dir/test_addr_pred.cpp.o"
  "CMakeFiles/test_addr_pred.dir/test_addr_pred.cpp.o.d"
  "test_addr_pred"
  "test_addr_pred.pdb"
  "test_addr_pred[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_addr_pred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
