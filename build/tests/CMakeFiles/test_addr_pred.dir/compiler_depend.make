# Empty compiler generated dependencies file for test_addr_pred.
# This may be replaced when dependencies are built.
