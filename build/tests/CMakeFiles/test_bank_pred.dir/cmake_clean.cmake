file(REMOVE_RECURSE
  "CMakeFiles/test_bank_pred.dir/test_bank_pred.cpp.o"
  "CMakeFiles/test_bank_pred.dir/test_bank_pred.cpp.o.d"
  "test_bank_pred"
  "test_bank_pred.pdb"
  "test_bank_pred[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bank_pred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
