file(REMOVE_RECURSE
  "CMakeFiles/test_bankmodes.dir/test_bankmodes.cpp.o"
  "CMakeFiles/test_bankmodes.dir/test_bankmodes.cpp.o.d"
  "test_bankmodes"
  "test_bankmodes.pdb"
  "test_bankmodes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bankmodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
