# Empty compiler generated dependencies file for test_bankmodes.
# This may be replaced when dependencies are built.
